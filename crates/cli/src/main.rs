//! Thin argv shim over `optinline_cli` (the testable library half).

use optinline_cli::serve::{
    cmd_serve, default_socket_path, parse_endpoint, remote_call, ServeConfig,
};
use optinline_cli::{
    cmd_autotune, cmd_cache, cmd_cfg, cmd_check, cmd_check_chaos, cmd_corpus, cmd_demo_reduce,
    cmd_gen, cmd_link, cmd_optimize, cmd_print, cmd_run, cmd_search, cmd_stats, CacheAction,
    CliError, EvalOptions, InitChoice, Objective, OptimizeOptions, StrategyChoice, TargetChoice,
};
use optinline_serve::{loadgen, ClientConfig, RequestKind};

const USAGE: &str = "\
optinline — optimal function inlining toolkit (ASPLOS'22 reproduction)

usage:
  optinline print    <file.ir>
  optinline stats    <file.ir>
  optinline optimize <file.ir> [--strategy never|always|heuristic|trial]
                               [--target x86|wasm] [--pass-stats]
                               [--objective size|speed|pareto]
                               [--full-sweep] [-o out.ir] [--connect EP]
  optinline search   <file.ir> [--bits N] [--target x86|wasm]
                               [--objective size|speed|pareto]
                               [--full-eval] [--stats] [--pass-stats]
                               [--jobs N] [--cache-dir DIR] [--no-persist]
                               [--cache-budget-bytes N] [--connect EP]
  optinline autotune <file.ir> [--rounds N] [--init clean|heuristic|both]
                               [--target x86|wasm] [--full-eval] [--stats]
                               [--objective size|speed|pareto]
                               [--pass-stats] [--cache-dir DIR] [--no-persist]
                               [--cache-budget-bytes N] [--connect EP]
  optinline serve    [--socket PATH | --tcp ADDR] [--cache-dir DIR]
                               [--cache-budget-bytes N] [--queue N]
                               [--max-concurrent N]
  optinline loadgen  [--connect EP] [--connections N] [--requests N]
                               [--mix ping|search|ping:9,search:1]
                               [--threads N] [--seed N] [--deadline-ms N]
  optinline cache    stats|gc|verify|compact --cache-dir DIR
                               [--cache-budget-bytes N]   (gc only)
  optinline run      <file.ir>
  optinline gen      [--seed N] [--internal N] [--clusters N] [-o out.ir]
  optinline link     <a.ir> <b.ir> ... [--keep main,api] [-o prog.ir]
  optinline corpus   --dir DIR [--scale small|full]
  optinline cfg      <file.ir> --func NAME        (DOT to stdout)
  optinline check    [--fuzz N] [--seed N] [--reduce] [--repro-dir DIR]
  optinline check    --demo-reduce [--seed N] [--repro-dir DIR]
  optinline check    --chaos N [--seed N]

`EP` is a Unix socket path or `tcp:HOST:PORT`. With --connect, optimize /
search / autotune ask the daemon at EP first and transparently fall back
to in-process evaluation when no daemon answers or it is draining. Cache
and --jobs flags are local settings: the daemon applies its own.

client knobs (with --connect):
  --deadline-ms N         queue-time budget; the daemon sheds the request
                          with `rejected{deadline}` if still queued past it
  --connect-timeout-ms N  bound on each dial attempt      (default 2000)
  --retries N             transient-failure retries       (default 2)
  --retry-backoff-ms N    backoff base, doubled and capped, deterministic
                          jitter                          (default 50)
";

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: impl Iterator<Item = String>) -> Result<Args, CliError> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut argv = argv.peekable();
        // Flags that take no value; present means "on".
        const BOOLEAN: &[&str] = &[
            "stats",
            "full-eval",
            "reduce",
            "demo-reduce",
            "pass-stats",
            "full-sweep",
            "no-persist",
        ];
        while let Some(a) = argv.next() {
            if let Some(name) = a.strip_prefix("--") {
                if BOOLEAN.contains(&name) {
                    flags.push((name.to_string(), String::new()));
                    continue;
                }
                let value = argv.next().ok_or_else(|| format!("--{name} needs a value"))?;
                flags.push((name.to_string(), value));
            } else if a == "-o" {
                let value = argv.next().ok_or("-o needs a path")?;
                flags.push(("out".into(), value));
            } else {
                positional.push(a);
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn eval_options(&self) -> Result<EvalOptions, CliError> {
        let jobs = match self.flag("jobs") {
            Some(j) => {
                let n: usize = j.parse()?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                Some(n)
            }
            None => None,
        };
        Ok(EvalOptions {
            incremental: self.flag("full-eval").is_none(),
            show_stats: self.flag("stats").is_some(),
            show_pass_stats: self.flag("pass-stats").is_some(),
            jobs,
            cache_dir: self.flag("cache-dir").map(std::path::PathBuf::from),
            no_persist: self.flag("no-persist").is_some(),
            cache_budget_bytes: self.cache_budget_bytes()?,
            objective: self.objective()?,
        })
    }

    fn objective(&self) -> Result<Objective, CliError> {
        let s = self.flag("objective").unwrap_or("size");
        Objective::parse(s)
            .ok_or_else(|| format!("unknown objective `{s}` (expected size|speed|pareto)").into())
    }

    fn cache_budget_bytes(&self) -> Result<Option<u64>, CliError> {
        match self.flag("cache-budget-bytes") {
            Some(b) => Ok(Some(b.parse()?)),
            None => Ok(None),
        }
    }

    /// Client-side robustness knobs for `--connect` calls. The retry
    /// jitter seed is the pid: deterministic within one process, spread
    /// across a herd of clients hammering a recovering daemon.
    fn client_config(&self) -> Result<ClientConfig, CliError> {
        Ok(ClientConfig {
            connect_timeout: Some(std::time::Duration::from_millis(
                self.flag("connect-timeout-ms").unwrap_or("2000").parse()?,
            )),
            deadline_ms: self.flag("deadline-ms").map(str::parse).transpose()?,
            retries: self.flag("retries").unwrap_or("2").parse()?,
            retry_base: std::time::Duration::from_millis(
                self.flag("retry-backoff-ms").unwrap_or("50").parse()?,
            ),
            retry_seed: std::process::id() as u64,
            ..ClientConfig::default()
        })
    }

    fn optimize_options(&self) -> Result<OptimizeOptions, CliError> {
        Ok(OptimizeOptions {
            full_sweep: self.flag("full-sweep").is_some(),
            pass_stats: self.flag("pass-stats").is_some(),
            objective: self.objective()?,
        })
    }

    fn input(&self) -> Result<String, CliError> {
        let path = self.positional.first().ok_or("missing input file")?;
        Ok(std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?)
    }

    fn positional_sources(&self) -> Result<Vec<String>, CliError> {
        if self.positional.is_empty() {
            return Err("missing input files".into());
        }
        self.positional
            .iter()
            .map(|p| {
                std::fs::read_to_string(p).map_err(|e| -> CliError { format!("{p}: {e}").into() })
            })
            .collect()
    }

    fn write_or_print(&self, content: &str) -> Result<(), CliError> {
        match self.flag("out") {
            Some(path) => {
                std::fs::write(path, content).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("[written to {path}]");
            }
            None => print!("{content}"),
        }
        Ok(())
    }
}

fn dispatch(cmd: &str, args: &Args) -> Result<(), CliError> {
    match cmd {
        "print" => {
            let out = cmd_print(&args.input()?)?;
            args.write_or_print(&out)
        }
        "stats" => {
            print!("{}", cmd_stats(&args.input()?)?);
            Ok(())
        }
        "optimize" => {
            let strategy = StrategyChoice::parse(args.flag("strategy").unwrap_or("heuristic"))?;
            let target = TargetChoice::parse(args.flag("target").unwrap_or("x86"))?;
            let opts = args.optimize_options()?;
            let source = args.input()?;
            if let Some(ep) = args.flag("connect") {
                let kind = RequestKind::Optimize {
                    source: source.clone(),
                    target: args.flag("target").unwrap_or("x86").to_string(),
                    strategy: args.flag("strategy").unwrap_or("heuristic").to_string(),
                    full_sweep: opts.full_sweep,
                    pass_stats: opts.pass_stats,
                    objective: args.flag("objective").unwrap_or("size").to_string(),
                };
                if let Some(outcome) =
                    remote_call(&parse_endpoint(ep), kind, &args.client_config()?)?
                {
                    print!("{}", outcome.report);
                    if args.flag("out").is_some() {
                        args.write_or_print(outcome.module.as_deref().unwrap_or_default())?;
                    }
                    return Ok(());
                }
            }
            let (report, module_text) = cmd_optimize(&source, strategy, target, opts)?;
            print!("{report}");
            if args.flag("out").is_some() {
                args.write_or_print(&module_text)?;
            }
            Ok(())
        }
        "search" => {
            let bits: u32 = args.flag("bits").unwrap_or("16").parse()?;
            let target = TargetChoice::parse(args.flag("target").unwrap_or("x86"))?;
            let eval = args.eval_options()?;
            let source = args.input()?;
            if let Some(ep) = args.flag("connect") {
                let kind = RequestKind::Search {
                    source: source.clone(),
                    target: args.flag("target").unwrap_or("x86").to_string(),
                    bits,
                    full_eval: !eval.incremental,
                    stats: eval.show_stats,
                    pass_stats: eval.show_pass_stats,
                    objective: args.flag("objective").unwrap_or("size").to_string(),
                };
                if let Some(outcome) =
                    remote_call(&parse_endpoint(ep), kind, &args.client_config()?)?
                {
                    print!("{}", outcome.report);
                    return Ok(());
                }
            }
            print!("{}", cmd_search(&source, bits, target, eval)?);
            Ok(())
        }
        "autotune" => {
            let rounds: usize = args.flag("rounds").unwrap_or("4").parse()?;
            let init = InitChoice::parse(args.flag("init").unwrap_or("both"))?;
            let target = TargetChoice::parse(args.flag("target").unwrap_or("x86"))?;
            let eval = args.eval_options()?;
            let source = args.input()?;
            if let Some(ep) = args.flag("connect") {
                let kind = RequestKind::Autotune {
                    source: source.clone(),
                    target: args.flag("target").unwrap_or("x86").to_string(),
                    rounds: rounds as u32,
                    init: args.flag("init").unwrap_or("both").to_string(),
                    full_eval: !eval.incremental,
                    stats: eval.show_stats,
                    pass_stats: eval.show_pass_stats,
                    objective: args.flag("objective").unwrap_or("size").to_string(),
                };
                if let Some(outcome) =
                    remote_call(&parse_endpoint(ep), kind, &args.client_config()?)?
                {
                    print!("{}", outcome.report);
                    return Ok(());
                }
            }
            print!("{}", cmd_autotune(&source, rounds, init, target, eval)?);
            Ok(())
        }
        "serve" => {
            let endpoint = match (args.flag("socket"), args.flag("tcp")) {
                (Some(_), Some(_)) => return Err("--socket and --tcp are exclusive".into()),
                (Some(path), None) => parse_endpoint(path),
                (None, Some(addr)) => optinline_serve::Endpoint::Tcp(addr.to_string()),
                (None, None) => optinline_serve::Endpoint::Unix(default_socket_path()),
            };
            let config = ServeConfig {
                endpoint,
                cache_dir: args.flag("cache-dir").map(std::path::PathBuf::from),
                cache_budget_bytes: args.cache_budget_bytes()?,
                queue_capacity: args.flag("queue").map(str::parse).transpose()?.unwrap_or(0),
                max_concurrent: args
                    .flag("max-concurrent")
                    .map(str::parse)
                    .transpose()?
                    .unwrap_or(0),
            };
            print!("{}", cmd_serve(config)?);
            Ok(())
        }
        "loadgen" => {
            let endpoint = match args.flag("connect") {
                Some(ep) => parse_endpoint(ep),
                None => optinline_serve::Endpoint::Unix(default_socket_path()),
            };
            let connections: usize = args.flag("connections").unwrap_or("64").parse()?;
            let seed: u64 = args.flag("seed").unwrap_or("0").parse()?;
            let mix = loadgen::LoadMix::parse(args.flag("mix").unwrap_or("ping"))
                .map_err(CliError::from)?;
            // Search requests need a module; a small deterministic one
            // generated from the seed keeps runs replayable.
            let search_source = if mix.search > 0 { Some(cmd_gen(seed, 6, 2)?) } else { None };
            let opts = loadgen::LoadgenOptions {
                connections,
                requests: args
                    .flag("requests")
                    .map(str::parse)
                    .transpose()?
                    .unwrap_or(connections as u64 * 10),
                threads: args.flag("threads").unwrap_or("0").parse()?,
                seed,
                mix,
                search_source,
                deadline_ms: args.flag("deadline-ms").map(str::parse).transpose()?,
            };
            let report = loadgen::run(&endpoint, &opts).map_err(CliError::from)?;
            print!("{}", report.render(&opts));
            if report.errors > 0 {
                return Err(format!("loadgen saw {} request errors", report.errors).into());
            }
            if report.balanced() == Some(false) {
                return Err("server accounting is unbalanced after the load".into());
            }
            Ok(())
        }
        "run" => {
            print!("{}", cmd_run(&args.input()?)?);
            Ok(())
        }
        "link" => {
            let sources = args.positional_sources().map_err(|e| -> CliError { e })?;
            let (report, text) = cmd_link(&sources, args.flag("keep"))?;
            print!("{report}");
            args.write_or_print(&text)
        }
        "cfg" => {
            let func = args.flag("func").ok_or("cfg needs --func NAME")?;
            print!("{}", cmd_cfg(&args.input()?, func)?);
            Ok(())
        }
        "corpus" => {
            let dir = args.flag("dir").ok_or("corpus needs --dir")?;
            let small = args.flag("scale").map(|s| s == "small").unwrap_or(false);
            print!("{}", cmd_corpus(std::path::Path::new(dir), small)?);
            Ok(())
        }
        "check" => {
            let seed: u64 = args.flag("seed").unwrap_or("12648430").parse()?;
            let repro_dir =
                std::path::PathBuf::from(args.flag("repro-dir").unwrap_or("results/repros"));
            if let Some(chaos) = args.flag("chaos") {
                print!("{}", cmd_check_chaos(chaos.parse()?, seed)?);
            } else if args.flag("demo-reduce").is_some() {
                print!("{}", cmd_demo_reduce(seed, Some(&repro_dir))?);
            } else {
                let cases: usize = args.flag("fuzz").unwrap_or("100").parse()?;
                let reduce = args.flag("reduce").is_some();
                print!("{}", cmd_check(cases, seed, reduce, Some(&repro_dir))?);
            }
            Ok(())
        }
        "cache" => {
            let action = CacheAction::parse(
                args.positional.first().ok_or("cache needs an action: stats|gc|verify|compact")?,
            )?;
            let dir = args.flag("cache-dir").ok_or("cache needs --cache-dir DIR")?;
            let budget = args.cache_budget_bytes()?;
            print!("{}", cmd_cache(action, std::path::Path::new(dir), budget)?);
            Ok(())
        }
        "gen" => {
            let seed: u64 = args.flag("seed").unwrap_or("0").parse()?;
            let internal: usize = args.flag("internal").unwrap_or("8").parse()?;
            let clusters: usize = args.flag("clusters").unwrap_or("1").parse()?;
            let text = cmd_gen(seed, internal, clusters)?;
            args.write_or_print(&text)
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}").into()),
    }
}

fn main() {
    // Arm a fault plan from OPTINLINE_FAULT_PLAN, if one is set: CI's
    // kill-9-mid-write recovery check crashes this very binary at a
    // chosen store write. A no-op (one env read) in normal runs.
    optinline_fault::arm_from_env();
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = dispatch(&cmd, &args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
