//! `optinline serve` — the daemon side — and the `--connect` client side.
//!
//! The daemon is the CLI's own subcommands behind a socket: requests are
//! executed by [`CliHandler`], which calls the very same `cmd_optimize` /
//! `cmd_search` / `cmd_autotune` functions the in-process paths use, so a
//! served answer is byte-identical to a local one by construction. The
//! daemon owns the cache policy: every request shares one persistent
//! store handle (`--cache-dir`), making the daemon a multi-tenant cache
//! tier — clients do not send cache flags over the wire.

use std::path::PathBuf;
use std::sync::Arc;

use optinline_serve::{
    install_drain_handler, Client, ClientConfig, ClientError, Endpoint, Handler, Outcome, Reply,
    RequestKind, ServeOptions, Server, ServerHandle, ServerStats,
};
use optinline_store::LocalStore;

use crate::{
    cmd_autotune_measured, cmd_optimize_measured, cmd_search_measured, CliError, EvalOptions,
    InitChoice, Objective, OptimizeOptions, StrategyChoice, TargetChoice,
};

/// Everything `optinline serve` needs to boot a daemon.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// The daemon-owned persistent cache directory; `None` serves
    /// cache-less.
    pub cache_dir: Option<PathBuf>,
    /// Post-request size-budgeted GC, applied by the daemon's own cache
    /// policy (same meaning as `--cache-budget-bytes` in-process).
    pub cache_budget_bytes: Option<u64>,
    /// Admission queue depth (`--queue`); 0 keeps the default.
    pub queue_capacity: usize,
    /// Concurrent evaluations (`--max-concurrent`); 0 sizes from the
    /// worker pool.
    pub max_concurrent: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            endpoint: Endpoint::Unix(default_socket_path()),
            cache_dir: None,
            cache_budget_bytes: None,
            queue_capacity: 0,
            max_concurrent: 0,
        }
    }
}

/// The default daemon socket: `$TMPDIR/optinline.sock`.
pub fn default_socket_path() -> PathBuf {
    std::env::temp_dir().join("optinline.sock")
}

/// Parses a `--connect` / `--socket` endpoint: `tcp:ADDR` is TCP,
/// anything else a Unix socket path.
pub fn parse_endpoint(s: &str) -> Endpoint {
    match s.strip_prefix("tcp:") {
        Some(addr) => Endpoint::Tcp(addr.to_string()),
        None => Endpoint::Unix(PathBuf::from(s)),
    }
}

/// Executes daemon requests by calling the CLI's own subcommand
/// functions, with the daemon's cache policy applied to every request.
pub struct CliHandler {
    cache_dir: Option<PathBuf>,
    cache_budget_bytes: Option<u64>,
    /// Held for the daemon's lifetime so the shared store (and its index)
    /// persists across requests instead of closing after each one.
    store: Option<Arc<LocalStore>>,
}

impl std::fmt::Debug for CliHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CliHandler").field("cache_dir", &self.cache_dir).finish_non_exhaustive()
    }
}

impl CliHandler {
    /// Opens the daemon's store (if a cache directory is configured) and
    /// wraps it in a handler.
    pub fn new(
        cache_dir: Option<PathBuf>,
        cache_budget_bytes: Option<u64>,
    ) -> Result<CliHandler, CliError> {
        let store = match &cache_dir {
            Some(dir) => Some(LocalStore::shared(dir)?),
            None => None,
        };
        Ok(CliHandler { cache_dir, cache_budget_bytes, store })
    }

    fn eval_options(
        &self,
        incremental: bool,
        stats: bool,
        pass_stats: bool,
        objective: Objective,
    ) -> EvalOptions {
        EvalOptions {
            incremental,
            show_stats: stats,
            show_pass_stats: pass_stats,
            jobs: None,
            cache_dir: self.cache_dir.clone(),
            no_persist: false,
            cache_budget_bytes: self.cache_budget_bytes,
            objective,
        }
    }
}

/// Parses a wire-format objective spelling; the decode layer has already
/// defaulted an absent field to `size`.
fn parse_objective(s: &str) -> Result<Objective, String> {
    Objective::parse(s)
        .ok_or_else(|| format!("unknown objective `{s}` (expected size|speed|pareto)"))
}

impl Handler for CliHandler {
    fn handle(&self, kind: &RequestKind, progress: &dyn Fn(&str)) -> Result<Reply, String> {
        progress(&format!("evaluating {}", kind.name()));
        let as_msg = |e: CliError| e.to_string();
        match kind {
            RequestKind::Optimize {
                source,
                target,
                strategy,
                full_sweep,
                pass_stats,
                objective,
            } => {
                let strategy = StrategyChoice::parse(strategy).map_err(as_msg)?;
                let target = TargetChoice::parse(target).map_err(as_msg)?;
                let objective = parse_objective(objective)?;
                let opts =
                    OptimizeOptions { full_sweep: *full_sweep, pass_stats: *pass_stats, objective };
                let (report, module, measurement) =
                    cmd_optimize_measured(source, strategy, target, opts).map_err(as_msg)?;
                Ok(Reply { report, module: Some(module), measurement: Some(measurement) })
            }
            RequestKind::Search {
                source,
                target,
                bits,
                full_eval,
                stats,
                pass_stats,
                objective,
            } => {
                let target = TargetChoice::parse(target).map_err(as_msg)?;
                let objective = parse_objective(objective)?;
                let eval = self.eval_options(!*full_eval, *stats, *pass_stats, objective);
                let (report, measurement) =
                    cmd_search_measured(source, *bits, target, eval).map_err(as_msg)?;
                Ok(Reply { report, module: None, measurement })
            }
            RequestKind::Autotune {
                source,
                target,
                rounds,
                init,
                full_eval,
                stats,
                pass_stats,
                objective,
            } => {
                let target = TargetChoice::parse(target).map_err(as_msg)?;
                let init = InitChoice::parse(init).map_err(as_msg)?;
                let objective = parse_objective(objective)?;
                let eval = self.eval_options(!*full_eval, *stats, *pass_stats, objective);
                let (report, measurement) =
                    cmd_autotune_measured(source, *rounds as usize, init, target, eval)
                        .map_err(as_msg)?;
                Ok(Reply { report, module: None, measurement })
            }
            other => Err(format!("request kind {:?} is not evaluable", other.name())),
        }
    }

    /// Drain-time flush: commit every scope's write-back buffer and the
    /// index before the daemon exits, so batched puts survive the daemon
    /// going away (the store half of the lost-write bugfix).
    fn drained(&self) {
        if let Some(store) = &self.store {
            if let Err(e) = store.flush_all() {
                eprintln!("[serve] store flush on drain failed: {e}");
            }
        }
    }
}

/// Boots a daemon on a background thread and returns its handle —
/// the building block tests and the equivalence oracle drive directly.
pub fn start_daemon(config: ServeConfig) -> Result<ServerHandle, CliError> {
    let handler = CliHandler::new(config.cache_dir, config.cache_budget_bytes)?;
    let mut opts = ServeOptions::default();
    if config.queue_capacity > 0 {
        opts.queue_capacity = config.queue_capacity;
    }
    opts.max_concurrent = config.max_concurrent;
    let server = Server::bind(config.endpoint, Box::new(handler), opts)?;
    Ok(server.start())
}

/// `optinline serve` — runs the daemon on the calling thread until a
/// `shutdown` request or SIGTERM/SIGINT drains it; returns the final
/// stats report.
pub fn cmd_serve(config: ServeConfig) -> Result<String, CliError> {
    let endpoint = config.endpoint.clone();
    let handler = CliHandler::new(config.cache_dir, config.cache_budget_bytes)?;
    let mut opts = ServeOptions::default();
    if config.queue_capacity > 0 {
        opts.queue_capacity = config.queue_capacity;
    }
    opts.max_concurrent = config.max_concurrent;
    let server =
        Server::bind(endpoint.clone(), Box::new(handler), opts)?.drain_on(install_drain_handler());
    eprintln!("[serve] listening on {endpoint}");
    let stats = server.run()?;
    Ok(render_server_stats(&stats))
}

/// Renders final daemon counters, one per line.
pub fn render_server_stats(stats: &ServerStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "accepted:      {}", stats.accepted);
    let _ = writeln!(out, "rejected:      {}", stats.rejected);
    let _ = writeln!(out, "evaluations:   {}", stats.evaluations);
    let _ = writeln!(out, "dedup joined:  {}", stats.dedup_joined);
    let _ = writeln!(out, "completed:     {}", stats.completed);
    let _ = writeln!(out, "errors:        {}", stats.errors);
    let _ = writeln!(out, "shed deadline: {}", stats.shed_deadline);
    let _ = writeln!(out, "cancelled:     {}", stats.cancelled);
    let _ = writeln!(out, "peak conns:    {}", stats.peak_connections);
    let _ = writeln!(out, "slow readers:  {}", stats.slow_reader_disconnects);
    let _ = writeln!(out, "poll wakeups:  {}", stats.poll_wakeups);
    out
}

/// Tries to serve `kind` through the daemon at `endpoint`.
///
/// `Ok(None)` means no daemon answered or the daemon is going away
/// (connect failure after the configured retries, or a typed
/// `rejected{draining}` refusal) — the caller should run in-process,
/// the terminal degradation. Daemon-side failures after a successful
/// admit are real errors, not fallbacks, so a half-broken daemon cannot
/// silently double the work; in particular a `rejected{deadline}` means
/// the caller's own queue-time budget expired and retrying locally
/// would only blow past it further.
pub fn remote_call(
    endpoint: &Endpoint,
    kind: RequestKind,
    config: &ClientConfig,
) -> Result<Option<Outcome>, CliError> {
    let mut client = match Client::connect_with(endpoint, config.clone()) {
        Ok(client) => client,
        Err(ClientError::Connect(e)) => {
            eprintln!("[no daemon at {endpoint} ({e}); running in-process]");
            return Ok(None);
        }
        Err(e) => return Err(e.to_string().into()),
    };
    match client.call(kind, &mut |note| eprintln!("[daemon] {note}")) {
        Ok(outcome) => Ok(Some(outcome)),
        Err(ClientError::Rejected(reason)) if reason == "draining" => {
            eprintln!("[daemon at {endpoint} is draining; running in-process]");
            Ok(None)
        }
        Err(e) => Err(e.to_string().into()),
    }
}
