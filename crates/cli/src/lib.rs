//! # optinline-cli
//!
//! The command-line driver a downstream user actually touches: it reads
//! modules in the textual IR format (see `optinline-ir`'s printer/parser),
//! runs the size pipeline under a chosen inlining strategy, searches for
//! the optimal configuration, autotunes, interprets, and generates
//! corpora.
//!
//! ```text
//! optinline gen --seed 7 --internal 8 -o demo.ir
//! optinline stats demo.ir
//! optinline optimize demo.ir --strategy heuristic --target x86
//! optinline search demo.ir --bits 16
//! optinline autotune demo.ir --rounds 4 --init both
//! optinline run demo.ir
//! ```
//!
//! The library half exposes each subcommand as a function returning its
//! report as a `String`, so the whole surface is unit-testable without
//! spawning processes; `main.rs` is a thin argv shim.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod serve;

use optinline_callgraph::{component_count, InlineGraph, PartitionStrategy};
use optinline_codegen::{text_size, Target, WasmLike, X86Like};
use optinline_core::autotune::Autotuner;
use optinline_core::tree::{evaluate_inlining_tree, space_size, try_build_inlining_tree};
use optinline_core::{
    cache_meta, evaluate_inlining_tree_dag, module_fingerprint, Evaluator, EvaluatorStats,
    InliningConfiguration, PersistentCache, PersistentEvaluator, SearchSession, SizeEvaluator,
    WorkerPool,
};
use optinline_heuristics::{baselines, CostModelInliner, TrialInliner};
use optinline_ir::{parse_module, Module};
use optinline_opt::{optimize_os_report, ForcedDecisions, PipelineOptions};
use optinline_store::LocalStore;
use std::error::Error;
use std::fmt::Write as _;
use std::path::PathBuf;

/// A boxed error with message context, the CLI's uniform failure type.
pub type CliError = Box<dyn Error>;

/// Which size target to measure against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TargetChoice {
    /// The x86-64-flavoured model (default).
    #[default]
    X86,
    /// The WebAssembly-flavoured model.
    Wasm,
}

impl TargetChoice {
    /// Parses `x86` / `wasm`.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "x86" => Ok(TargetChoice::X86),
            "wasm" => Ok(TargetChoice::Wasm),
            other => Err(format!("unknown target `{other}` (expected x86|wasm)").into()),
        }
    }

    fn boxed(self) -> Box<dyn Target> {
        match self {
            TargetChoice::X86 => Box::new(X86Like),
            TargetChoice::Wasm => Box::new(WasmLike),
        }
    }

    fn as_dyn(&self) -> &'static dyn Target {
        match self {
            TargetChoice::X86 => &X86Like,
            TargetChoice::Wasm => &WasmLike,
        }
    }
}

/// Which inlining strategy `optimize` should execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StrategyChoice {
    /// Inline nothing.
    Never,
    /// Inline everything (recursion-bounded).
    Always,
    /// The LLVM-`-Os`-like cost model (default).
    #[default]
    Heuristic,
    /// Greedy measured trials.
    Trial,
}

impl StrategyChoice {
    /// Parses `never` / `always` / `heuristic` / `trial`.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "never" => Ok(StrategyChoice::Never),
            "always" => Ok(StrategyChoice::Always),
            "heuristic" => Ok(StrategyChoice::Heuristic),
            "trial" => Ok(StrategyChoice::Trial),
            other => {
                Err(format!("unknown strategy `{other}` (expected never|always|heuristic|trial)")
                    .into())
            }
        }
    }

    /// Computes this strategy's configuration for a module.
    pub fn configuration(self, module: &Module, target: &dyn Target) -> InliningConfiguration {
        let map = match self {
            StrategyChoice::Never => baselines::never_inline(module),
            StrategyChoice::Always => baselines::always_inline(module),
            StrategyChoice::Heuristic => CostModelInliner::default().decide(module, target),
            StrategyChoice::Trial => TrialInliner::default().decide(module, target),
        };
        InliningConfiguration::from_decisions(map)
    }
}

/// Evaluator selection and reporting options for `search` / `autotune`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalOptions {
    /// Use the component-scoped incremental evaluator (default); `false`
    /// forces whole-module compiles (`--full-eval`).
    pub incremental: bool,
    /// Append the evaluator's counter line to the report (`--stats`).
    pub show_stats: bool,
    /// Append the aggregated per-pass / analysis-cache table
    /// (`--pass-stats`).
    pub show_pass_stats: bool,
    /// Worker count for the task-DAG search executor (`--jobs`). `None`
    /// uses the process-wide pool; `Some(1)` takes the sequential
    /// `evaluate_inlining_tree` path exactly; `Some(n)` drives the DAG
    /// with `n` lanes (the caller plus `n - 1` pool workers).
    pub jobs: Option<usize>,
    /// Directory for the persistent cross-run evaluation cache
    /// (`--cache-dir`). `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// Disable the persistent cache even when `cache_dir` is set
    /// (`--no-persist`).
    pub no_persist: bool,
    /// Byte budget for the evaluation store (`--cache-budget-bytes`):
    /// after the run, least-recently-used scope logs are evicted until the
    /// cache directory fits. `None` leaves the store unbounded.
    pub cache_budget_bytes: Option<u64>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            incremental: true,
            show_stats: false,
            show_pass_stats: false,
            jobs: None,
            cache_dir: None,
            no_persist: false,
            cache_budget_bytes: None,
        }
    }
}

impl EvalOptions {
    /// Opens the persistent evaluation cache these options ask for, if
    /// any: one store scope addressed by the evaluator's `memo_scope`
    /// fingerprint (module text + target + pipeline options), with the
    /// older per-module fingerprint passed along so a pre-store flat cache
    /// file is imported once (or cleanly ignored if its identity differs).
    fn open_cache(&self, ev: &SizeEvaluator) -> Result<Option<PersistentCache>, CliError> {
        match (&self.cache_dir, self.no_persist) {
            (Some(dir), false) => {
                let legacy = module_fingerprint(ev.module(), ev.target().name());
                let fp = ev.memo_scope().unwrap_or(legacy);
                // Recorded in the log and verified on reopen, so a
                // fingerprint collision or stale file restarts the scope
                // instead of serving another module's sizes.
                let meta = cache_meta(ev.module(), ev.target().name());
                Ok(Some(PersistentCache::open_scoped(dir, fp, Some(legacy), &meta)?))
            }
            _ => Ok(None),
        }
    }

    /// Runs the post-run size-budgeted GC these options ask for, if any.
    fn maybe_gc(&self, cache: &Option<PersistentCache>) -> Result<(), CliError> {
        if let (Some(c), Some(budget)) = (cache, self.cache_budget_bytes) {
            c.store().gc(budget)?;
        }
        Ok(())
    }
}

/// Pipeline scheduling and reporting options for `optimize`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct OptimizeOptions {
    /// Run the legacy whole-module sweep scheduler instead of the
    /// change-driven worklist (`--full-sweep`). The two produce
    /// byte-identical modules; this exists for benchmarking and as the
    /// reference the scheduling oracle compares against.
    pub full_sweep: bool,
    /// Append the per-pass invocation/changed table plus analysis-cache
    /// and scheduling counters to the report (`--pass-stats`).
    pub pass_stats: bool,
}

/// Parses a module from textual IR, verifying it.
pub fn load_module(source: &str) -> Result<Module, CliError> {
    let module = parse_module(source)?;
    optinline_ir::verify_module(&module)?;
    Ok(module)
}

/// `optinline print` — parse, verify, pretty-print (round-trip check).
pub fn cmd_print(source: &str) -> Result<String, CliError> {
    let module = load_module(source)?;
    Ok(module.to_string())
}

/// `optinline stats` — structural summary of a module.
pub fn cmd_stats(source: &str) -> Result<String, CliError> {
    let module = load_module(source)?;
    let graph = InlineGraph::from_module(&module);
    let sites = module.inlinable_sites().len();
    let mut out = String::new();
    let _ = writeln!(out, "module:              {}", module.name);
    let _ = writeln!(out, "functions:           {}", module.func_count());
    let _ = writeln!(out, "instructions:        {}", module.inst_count());
    let _ = writeln!(out, "globals:             {}", module.globals().len());
    let _ = writeln!(out, "inlinable sites:     {sites}");
    let _ = writeln!(out, "graph components:    {}", component_count(&graph));
    let _ =
        writeln!(out, "bridge groups:       {}", optinline_callgraph::bridge_groups(&graph).len());
    let _ = writeln!(out, "naive space:         2^{sites}");
    match try_build_inlining_tree(&graph, PartitionStrategy::Paper, 1 << 22) {
        Some(tree) => {
            let _ = writeln!(out, "recursive space:     {} evaluations", space_size(&tree));
        }
        None => {
            let _ = writeln!(out, "recursive space:     > 2^22 (not exhaustively explorable)");
        }
    }
    let _ = writeln!(out, "x86-like text size:  {} B (unoptimized)", text_size(&module, &X86Like));
    let _ = writeln!(out, "wasm-like text size: {} B (unoptimized)", text_size(&module, &WasmLike));
    Ok(out)
}

/// `optinline optimize` — run the pipeline under a strategy; returns the
/// report and the optimized module's text.
pub fn cmd_optimize(
    source: &str,
    strategy: StrategyChoice,
    target: TargetChoice,
    opts: OptimizeOptions,
) -> Result<(String, String), CliError> {
    let module = load_module(source)?;
    let config = strategy.configuration(&module, target.as_dyn());
    let mut optimized = module.clone();
    let report = optimize_os_report(
        &mut optimized,
        &ForcedDecisions::new(config.decisions().clone()),
        PipelineOptions { full_sweep: opts.full_sweep, ..PipelineOptions::default() },
    );
    let t = target.boxed();
    let before = text_size(&module, t.as_ref());
    let after = text_size(&optimized, t.as_ref());
    let mut out = String::new();
    let _ = writeln!(out, "strategy:        {strategy:?}");
    let _ = writeln!(out, "target:          {}", t.name());
    let _ = writeln!(
        out,
        "scheduler:       {}",
        if opts.full_sweep { "full sweep (legacy)" } else { "change-driven worklist" }
    );
    let _ = writeln!(
        out,
        "sites inlined:   {} of {}",
        config.inlined_count(),
        config.decisions().len()
    );
    let _ = writeln!(out, "call expansions: {}", report.inlined);
    let _ = writeln!(
        out,
        "size:            {before} B -> {after} B ({:.1}%)",
        100.0 * after as f64 / before as f64
    );
    if opts.pass_stats {
        out.push_str(&report.stats.render());
    }
    Ok((out, optimized.to_string()))
}

/// `optinline search` — exhaustive optimum through the recursively
/// partitioned space, compared against the baseline strategies.
pub fn cmd_search(
    source: &str,
    bits: u32,
    target: TargetChoice,
    eval: EvalOptions,
) -> Result<String, CliError> {
    let module = load_module(source)?;
    let graph = InlineGraph::from_module(&module);
    let n = module.inlinable_sites().len();
    let Some(tree) = try_build_inlining_tree(&graph, PartitionStrategy::Paper, 1u128 << bits)
    else {
        return Err(format!(
            "recursively partitioned space exceeds 2^{bits} evaluations; \
             raise --bits or use `autotune`"
        )
        .into());
    };
    let ev = SizeEvaluator::new(module, target.boxed(), eval.incremental);
    let evals = space_size(&tree);
    let cache = eval.open_cache(&ev)?;
    let persisted = cache.as_ref().map(|c| PersistentEvaluator::new(&ev, c, ev.sites().clone()));
    let search_ev: &dyn Evaluator = match &persisted {
        Some(p) => p,
        None => &ev,
    };
    let session = SearchSession::new();
    let (config, size) = run_search(&tree, search_ev, eval.jobs, &session);
    let heuristic = StrategyChoice::Heuristic.configuration(ev.module(), ev.target());
    let h_size = search_ev.size_of(&heuristic);
    let none = search_ev.size_of(&InliningConfiguration::clean_slate());
    // Commit buffered puts before the budget GC measures the directory
    // (and before any abort path past this point could drop them).
    if let Some(c) = &cache {
        c.flush()?;
    }
    eval.maybe_gc(&cache)?;
    let mut out = String::new();
    let _ = writeln!(out, "sites:              {n} (naive space 2^{n})");
    let _ = writeln!(out, "evaluations needed: {evals}");
    let _ = writeln!(out, "compilations done:  {} (memoized)", ev.stats().compiles);
    let _ = writeln!(out, "optimal size:       {size} B");
    let _ = writeln!(out, "optimal config:     {config}");
    let _ =
        writeln!(out, "no inlining:        {none} B ({:.1}%)", 100.0 * none as f64 / size as f64);
    let _ = writeln!(
        out,
        "heuristic:          {h_size} B ({:.1}%)",
        100.0 * h_size as f64 / size as f64
    );
    if eval.show_stats {
        let _ =
            writeln!(out, "evaluator:          {}", merged_stats(&ev, &session, &cache).render());
    }
    if eval.show_pass_stats {
        out.push_str(&ev.stats().pipeline.render());
    }
    Ok(out)
}

/// Dispatches a tree evaluation according to `--jobs`: `Some(1)` is the
/// sequential Algorithm 1 walk, anything else the task-DAG executor — on a
/// private pool of `n - 1` workers for `Some(n)`, on the process-wide pool
/// for `None`. Either way the result is byte-identical.
fn run_search(
    tree: &optinline_core::InliningTree,
    evaluator: &dyn Evaluator,
    jobs: Option<usize>,
    session: &SearchSession,
) -> (InliningConfiguration, u64) {
    let base = InliningConfiguration::clean_slate();
    match jobs {
        Some(1) => evaluate_inlining_tree(tree, evaluator, base),
        Some(n) => {
            let pool = WorkerPool::new(n.saturating_sub(1));
            evaluate_inlining_tree_dag(tree, evaluator, base, &pool, Some(session))
        }
        None => {
            evaluate_inlining_tree_dag(tree, evaluator, base, WorkerPool::global(), Some(session))
        }
    }
}

/// The evaluator's counters with the executor's, the persistent cache's,
/// and the backing store's folded in — the `--stats` line.
fn merged_stats(
    ev: &SizeEvaluator,
    session: &SearchSession,
    cache: &Option<PersistentCache>,
) -> EvaluatorStats {
    let mut stats = ev.stats();
    stats.absorb_executor(session.stats());
    if let Some(c) = cache {
        stats.absorb_persist(c.stats());
        stats.absorb_store(c.store_stats());
    }
    stats
}

/// Initialization mode for `autotune`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InitChoice {
    /// Start from all-no-inline.
    Clean,
    /// Start from the heuristic's decisions.
    Heuristic,
    /// Run both and keep the better (default; the paper's combined mode).
    #[default]
    Both,
}

impl InitChoice {
    /// Parses `clean` / `heuristic` / `both`.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "clean" => Ok(InitChoice::Clean),
            "heuristic" => Ok(InitChoice::Heuristic),
            "both" => Ok(InitChoice::Both),
            other => Err(format!("unknown init `{other}` (expected clean|heuristic|both)").into()),
        }
    }
}

/// `optinline autotune` — the paper's Algorithm 3 with round-based and
/// combined variants.
pub fn cmd_autotune(
    source: &str,
    rounds: usize,
    init: InitChoice,
    target: TargetChoice,
    eval: EvalOptions,
) -> Result<String, CliError> {
    let module = load_module(source)?;
    let ev = SizeEvaluator::new(module, target.boxed(), eval.incremental);
    let sites = ev.sites().clone();
    if sites.is_empty() {
        return Ok("module has no inlinable call sites; nothing to tune\n".into());
    }
    let cache = eval.open_cache(&ev)?;
    let persisted = cache.as_ref().map(|c| PersistentEvaluator::new(&ev, c, ev.sites().clone()));
    let search_ev: &dyn Evaluator = match &persisted {
        Some(p) => p,
        None => &ev,
    };
    let heuristic = StrategyChoice::Heuristic.configuration(ev.module(), ev.target());
    let h_size = search_ev.size_of(&heuristic);
    let tuner = Autotuner::new(search_ev, sites.clone());
    let mut out = String::new();
    let mut outcomes = Vec::new();
    if init != InitChoice::Heuristic {
        let clean = tuner.clean_slate(rounds);
        let _ = writeln!(
            out,
            "clean slate:     {} B after {} round(s)",
            clean.best().size,
            clean.rounds.len()
        );
        outcomes.push(clean);
    }
    if init != InitChoice::Clean {
        let h = tuner.run(heuristic.clone(), rounds);
        let _ =
            writeln!(out, "heuristic init:  {} B after {} round(s)", h.best().size, h.rounds.len());
        outcomes.push(h);
    }
    let best = Autotuner::combine(outcomes.iter());
    let _ = writeln!(out, "baseline:        {h_size} B (100.0%)");
    let _ = writeln!(
        out,
        "tuned best:      {} B ({:.1}%)",
        best.size,
        100.0 * best.size as f64 / h_size as f64
    );
    let _ = writeln!(out, "configuration:   {}", best.config);
    let _ = writeln!(out, "compilations:    {}", ev.stats().compiles);
    if let Some(c) = &cache {
        c.flush()?;
    }
    eval.maybe_gc(&cache)?;
    if eval.show_stats {
        let mut stats = ev.stats();
        if let Some(c) = &cache {
            stats.absorb_persist(c.stats());
            stats.absorb_store(c.store_stats());
        }
        let _ = writeln!(out, "evaluator:       {}", stats.render());
    }
    if eval.show_pass_stats {
        out.push_str(&ev.stats().pipeline.render());
    }
    Ok(out)
}

/// `optinline run` — interpret the module's `main`.
pub fn cmd_run(source: &str) -> Result<String, CliError> {
    let module = load_module(source)?;
    let outcome = optinline_ir::interp::run_main(&module)?;
    let mut out = String::new();
    let _ = writeln!(out, "return value: {:?}", outcome.ret);
    let _ = writeln!(out, "globals:      {:?}", outcome.globals);
    let _ = writeln!(out, "cycles:       {}", outcome.cycles);
    let _ = writeln!(out, "steps:        {}", outcome.steps);
    Ok(out)
}

/// `optinline cfg` — render a function's control-flow graph as DOT.
pub fn cmd_cfg(source: &str, func_name: &str) -> Result<String, CliError> {
    let module = load_module(source)?;
    let fid = module
        .func_by_name(func_name)
        .ok_or_else(|| format!("no function named `{func_name}` in {}", module.name))?;
    Ok(optinline_ir::dot::function_cfg_dot(&module, fid))
}

/// `optinline link` — link several modules, optionally internalizing
/// everything except the kept symbols, and return the combined module's
/// text plus a summary line.
pub fn cmd_link(sources: &[String], keep: Option<&str>) -> Result<(String, String), CliError> {
    if sources.is_empty() {
        return Err("link needs at least one input".into());
    }
    let modules = sources.iter().map(|s| load_module(s)).collect::<Result<Vec<_>, _>>()?;
    let per_file_sites: usize = modules.iter().map(|m| m.inlinable_sites().len()).sum();
    let mut linked = optinline_ir::link_modules("linked", &modules);
    let mut demoted = 0;
    if let Some(keep) = keep {
        let kept: Vec<&str> = keep.split(',').map(str::trim).collect();
        demoted = optinline_ir::internalize_except(&mut linked, |name| kept.contains(&name));
    }
    optinline_ir::verify_module(&linked)?;
    let mut report = String::new();
    let _ = writeln!(report, "linked {} modules: {} functions", sources.len(), linked.func_count());
    let _ = writeln!(
        report,
        "inlinable sites: {} per-file -> {} linked",
        per_file_sites,
        linked.inlinable_sites().len()
    );
    if keep.is_some() {
        let _ = writeln!(report, "internalized:    {demoted} formerly-public functions");
    }
    Ok((report, linked.to_string()))
}

/// `optinline corpus` — materialize the synthetic suite as `.ir` files.
pub fn cmd_corpus(dir: &std::path::Path, small: bool) -> Result<String, CliError> {
    let scale =
        if small { optinline_workloads::Scale::Small } else { optinline_workloads::Scale::Full };
    let written = optinline_workloads::save_suite(dir, scale)?;
    Ok(format!(
        "wrote {} files under {}
",
        written.len(),
        dir.display()
    ))
}

/// `optinline check` — the differential fuzz loop: random modules ×
/// random configurations through the semantic and size oracles. Returns
/// the report on a clean run; a run with divergences or mismatches is an
/// `Err` carrying the same report, so the process exits non-zero (which is
/// what CI keys on).
pub fn cmd_check(
    cases: usize,
    seed: u64,
    reduce: bool,
    repro_dir: Option<&std::path::Path>,
) -> Result<String, CliError> {
    let options = optinline_check::FuzzOptions {
        cases,
        seed,
        reduce,
        repro_dir: repro_dir.map(std::path::Path::to_path_buf),
        ..Default::default()
    };
    let report = optinline_check::run_fuzz(&options)?;
    let rendered = report.render();
    if report.clean() {
        Ok(rendered)
    } else {
        Err(format!("differential check failed\n{rendered}").into())
    }
}

/// `optinline check --demo-reduce` — seed a known fast-path size bug, let
/// the size oracle catch it, and shrink the trigger with the reducer. An
/// end-to-end proof that the harness detects and minimizes real failures.
pub fn cmd_demo_reduce(seed: u64, repro_dir: Option<&std::path::Path>) -> Result<String, CliError> {
    let demo = optinline_check::run_reducer_demo(seed, repro_dir)?;
    let mut out = String::new();
    let _ =
        writeln!(out, "seeded bug:      size_of inflated when `f3` present and ≥1 site inlined");
    let _ = writeln!(
        out,
        "reduced module:  {} -> {} function(s)",
        demo.functions_before, demo.functions_after
    );
    let _ = writeln!(out, "reduced config:  {} decision(s)", demo.config_decisions);
    let _ = writeln!(out, "predicate runs:  {}", demo.predicate_runs);
    if let Some(p) = &demo.repro_path {
        let _ = writeln!(out, "reproducer:      {}", p.display());
    }
    Ok(out)
}

/// `optinline gen` — emit a generated module as textual IR.
pub fn cmd_gen(seed: u64, n_internal: usize, clusters: usize) -> Result<String, CliError> {
    let module = optinline_workloads::generate_file(&optinline_workloads::GenParams {
        n_internal,
        clusters,
        ..optinline_workloads::GenParams::named(format!("gen_{seed}"), seed)
    });
    Ok(module.to_string())
}

/// What `optinline cache` should do to the evaluation store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheAction {
    /// Report entry/byte/counter totals.
    Stats,
    /// Evict least-recently-used scopes until the directory fits the
    /// `--cache-budget-bytes` budget.
    Gc,
    /// Structurally scan every log, report damage, and rebuild the index.
    Verify,
    /// Rewrite every scope log, dropping superseded and duplicate lines.
    Compact,
}

impl CacheAction {
    /// Parses `stats` / `gc` / `verify` / `compact`.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "stats" => Ok(CacheAction::Stats),
            "gc" => Ok(CacheAction::Gc),
            "verify" => Ok(CacheAction::Verify),
            "compact" => Ok(CacheAction::Compact),
            other => {
                Err(format!("unknown cache action `{other}` (expected stats|gc|verify|compact)")
                    .into())
            }
        }
    }
}

/// `optinline cache` — administer the on-disk evaluation store under
/// `--cache-dir`. `verify` returns an `Err` carrying its report when the
/// scan finds malformed lines or unreadable logs, so the process exits
/// non-zero (which is what CI keys on).
pub fn cmd_cache(
    action: CacheAction,
    dir: &std::path::Path,
    budget_bytes: Option<u64>,
) -> Result<String, CliError> {
    let store = LocalStore::shared(dir)?;
    let mut out = String::new();
    let _ = writeln!(out, "cache dir:       {}", dir.display());
    match action {
        CacheAction::Stats => {
            let stats = store.store_stats();
            let _ = writeln!(out, "scopes:          {}", stats.scopes);
            let _ = writeln!(out, "entries:         {}", stats.entries);
            let _ = writeln!(out, "disk bytes:      {}", store.disk_bytes()?);
        }
        CacheAction::Gc => {
            let budget =
                budget_bytes.ok_or("cache gc needs --cache-budget-bytes <n>".to_string())?;
            let report = store.gc(budget)?;
            let _ = writeln!(out, "budget:          {} B", report.budget_bytes);
            let _ = writeln!(
                out,
                "disk bytes:      {} B -> {} B",
                report.before_bytes, report.after_bytes
            );
            let _ = writeln!(out, "evicted scopes:  {}", report.evicted_scopes);
            let _ = writeln!(out, "evicted legacy:  {}", report.evicted_legacy);
        }
        CacheAction::Verify => {
            let report = store.verify()?;
            let _ = writeln!(out, "scopes:          {}", report.scopes);
            let _ = writeln!(out, "entries:         {}", report.entries);
            let _ = writeln!(out, "disk bytes:      {}", report.bytes);
            let _ = writeln!(out, "duplicate lines: {}", report.duplicate_lines);
            let _ = writeln!(out, "malformed lines: {}", report.malformed_lines);
            let _ = writeln!(out, "unreadable logs: {}", report.unreadable_logs);
            let _ = writeln!(out, "legacy files:    {}", report.legacy_files);
            let _ = writeln!(out, "foreign files:   {}", report.foreign_files);
            let _ = writeln!(out, "index:           rebuilt");
            if !report.clean() {
                return Err(format!("cache verify found damage\n{out}").into());
            }
        }
        CacheAction::Compact => {
            let reclaimed = store.compact_all()?;
            let _ = writeln!(out, "reclaimed:       {reclaimed} B");
            let _ = writeln!(out, "disk bytes:      {}", store.disk_bytes()?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_source() -> String {
        cmd_gen(11, 5, 2).expect("generation succeeds")
    }

    #[test]
    fn gen_print_round_trips() {
        let src = demo_source();
        let printed = cmd_print(&src).unwrap();
        assert_eq!(printed, src);
    }

    #[test]
    fn stats_reports_structure() {
        let s = cmd_stats(&demo_source()).unwrap();
        assert!(s.contains("functions:"));
        assert!(s.contains("inlinable sites:"));
        assert!(s.contains("recursive space:"));
    }

    #[test]
    fn optimize_reports_sizes_for_every_strategy() {
        let src = demo_source();
        for strat in [
            StrategyChoice::Never,
            StrategyChoice::Always,
            StrategyChoice::Heuristic,
            StrategyChoice::Trial,
        ] {
            let (report, text) =
                cmd_optimize(&src, strat, TargetChoice::X86, OptimizeOptions::default()).unwrap();
            assert!(report.contains("size:"), "{strat:?}: {report}");
            // The optimized module still parses.
            load_module(&text).unwrap();
        }
    }

    #[test]
    fn search_finds_optimum_and_beats_strategies() {
        let src = demo_source();
        let report = cmd_search(&src, 18, TargetChoice::X86, EvalOptions::default()).unwrap();
        assert!(report.contains("optimal size:"));
        // Relative lines are >= 100%.
        for line in report.lines().filter(|l| l.contains('%')) {
            let pct: f64 = line
                .split('(')
                .nth(1)
                .and_then(|s| s.split('%').next())
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(100.0);
            assert!(pct >= 100.0 - 1e-9, "strategy beat the optimum: {line}");
        }
    }

    #[test]
    fn search_stats_line_and_full_eval_agree() {
        let src = demo_source();
        let inc = cmd_search(
            &src,
            18,
            TargetChoice::X86,
            EvalOptions { incremental: true, show_stats: true, ..Default::default() },
        )
        .unwrap();
        let full = cmd_search(
            &src,
            18,
            TargetChoice::X86,
            EvalOptions { incremental: false, show_stats: true, ..Default::default() },
        )
        .unwrap();
        assert!(inc.contains("evaluator:"), "{inc}");
        assert!(full.contains("evaluator:"), "{full}");
        let optimal =
            |r: &str| r.lines().find(|l| l.starts_with("optimal size:")).map(str::to_owned);
        assert_eq!(optimal(&inc), optimal(&full), "evaluators disagree on the optimum");
    }

    #[test]
    fn autotune_improves_or_matches_baseline() {
        let src = demo_source();
        let report =
            cmd_autotune(&src, 3, InitChoice::Both, TargetChoice::X86, EvalOptions::default())
                .unwrap();
        assert!(report.contains("tuned best:"));
        let pct: f64 = report
            .lines()
            .find(|l| l.contains("tuned best"))
            .and_then(|l| l.split('(').nth(1))
            .and_then(|s| s.split('%').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("percentage present");
        assert!(pct <= 100.0);
    }

    #[test]
    fn run_interprets_main() {
        let report = cmd_run(&demo_source()).unwrap();
        assert!(report.contains("cycles:"));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(cmd_print("not ir at all").is_err());
        assert!(TargetChoice::parse("arm").is_err());
        assert!(StrategyChoice::parse("magic").is_err());
        assert!(InitChoice::parse("warm").is_err());
    }

    #[test]
    fn search_refuses_oversized_spaces() {
        let src = cmd_gen(3, 20, 1).unwrap();
        let module = load_module(&src).unwrap();
        if module.inlinable_sites().len() > 12 {
            let err = cmd_search(&src, 4, TargetChoice::X86, EvalOptions::default());
            assert!(err.is_err() || module.inlinable_sites().len() <= 12);
        }
    }

    #[test]
    fn cfg_renders_dot_for_named_functions() {
        let src = demo_source();
        let dot = cmd_cfg(&src, "main").unwrap();
        assert!(dot.contains("digraph \"main\""));
        assert!(cmd_cfg(&src, "no_such_fn").is_err());
    }

    #[test]
    fn wasm_target_is_selectable() {
        let src = demo_source();
        let (report, _) =
            cmd_optimize(&src, StrategyChoice::Heuristic, TargetChoice::Wasm, Default::default())
                .unwrap();
        assert!(report.contains("wasm-like"));
    }

    #[test]
    fn pass_stats_table_appears_on_request() {
        let src = demo_source();
        let (plain, _) =
            cmd_optimize(&src, StrategyChoice::Heuristic, TargetChoice::X86, Default::default())
                .unwrap();
        assert!(!plain.contains("pass stats:"), "{plain}");
        let (with_stats, _) = cmd_optimize(
            &src,
            StrategyChoice::Heuristic,
            TargetChoice::X86,
            OptimizeOptions { pass_stats: true, ..Default::default() },
        )
        .unwrap();
        assert!(with_stats.contains("pass stats:"), "{with_stats}");
        assert!(with_stats.contains("analysis cache:"), "{with_stats}");
        assert!(with_stats.contains("scheduling:"), "{with_stats}");
    }

    #[test]
    fn full_sweep_and_worklist_report_identical_sizes() {
        let src = demo_source();
        let (wl_report, wl_text) =
            cmd_optimize(&src, StrategyChoice::Heuristic, TargetChoice::X86, Default::default())
                .unwrap();
        let (fs_report, fs_text) = cmd_optimize(
            &src,
            StrategyChoice::Heuristic,
            TargetChoice::X86,
            OptimizeOptions { full_sweep: true, ..Default::default() },
        )
        .unwrap();
        assert_eq!(wl_text, fs_text, "schedulers disagree on the optimized module");
        let size_line = |r: &str| r.lines().find(|l| l.starts_with("size:")).map(str::to_owned);
        assert_eq!(size_line(&wl_report), size_line(&fs_report));
        assert!(wl_report.contains("change-driven worklist"));
        assert!(fs_report.contains("full sweep (legacy)"));
    }

    #[test]
    fn search_output_is_identical_across_job_counts() {
        // --jobs 1 takes the sequential Algorithm 1 path; every other
        // setting flattens into the task-DAG executor. The report must be
        // byte-identical regardless.
        let src = demo_source();
        let opts = |jobs| EvalOptions { jobs, ..Default::default() };
        // "compilations done" may differ: concurrent lanes can race to
        // compile the same memo key (duplicated work, never a different
        // answer). Everything else — above all the optimum — must match.
        let masked = |report: String| -> String {
            report
                .lines()
                .filter(|l| !l.starts_with("compilations done:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let sequential = masked(cmd_search(&src, 18, TargetChoice::X86, opts(Some(1))).unwrap());
        for jobs in [None, Some(2), Some(4), Some(8)] {
            let parallel = masked(cmd_search(&src, 18, TargetChoice::X86, opts(jobs)).unwrap());
            assert_eq!(sequential, parallel, "jobs={jobs:?} diverged");
        }
    }

    #[test]
    fn persistent_cache_warm_starts_search() {
        let src = demo_source();
        let dir = std::env::temp_dir().join(format!("optinline-cli-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts =
            EvalOptions { show_stats: true, cache_dir: Some(dir.clone()), ..Default::default() };
        let cold = cmd_search(&src, 18, TargetChoice::X86, opts.clone()).unwrap();
        let warm = cmd_search(&src, 18, TargetChoice::X86, opts).unwrap();
        let optimal =
            |r: &str| r.lines().find(|l| l.starts_with("optimal size:")).map(str::to_owned);
        assert_eq!(optimal(&cold), optimal(&warm));
        assert!(cold.contains("persist:"), "{cold}");
        // The warm run answers every query from disk: zero compilations.
        let compiles = warm
            .lines()
            .find(|l| l.starts_with("compilations done:"))
            .and_then(|l| l.split_whitespace().nth(2).map(str::to_owned))
            .unwrap();
        assert_eq!(compiles, "0", "warm run must not compile: {warm}");
        // And the stats line reports the hits.
        let stats_line = warm.lines().find(|l| l.starts_with("evaluator:")).unwrap();
        assert!(stats_line.contains("persist:"), "{stats_line}");
        assert!(stats_line.contains("0 misses"), "{stats_line}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_persist_disables_the_cache() {
        let src = demo_source();
        let dir =
            std::env::temp_dir().join(format!("optinline-cli-nopersist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = EvalOptions {
            show_stats: true,
            cache_dir: Some(dir.clone()),
            no_persist: true,
            ..Default::default()
        };
        let report = cmd_search(&src, 18, TargetChoice::X86, opts).unwrap();
        assert!(!report.contains("persist:"), "{report}");
        assert!(!dir.exists(), "--no-persist must not create the cache dir");
    }

    #[test]
    fn autotune_reuses_the_search_cache() {
        let src = demo_source();
        let dir =
            std::env::temp_dir().join(format!("optinline-cli-tunecache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts =
            EvalOptions { show_stats: true, cache_dir: Some(dir.clone()), ..Default::default() };
        let first =
            cmd_autotune(&src, 2, InitChoice::Clean, TargetChoice::X86, opts.clone()).unwrap();
        let second = cmd_autotune(&src, 2, InitChoice::Clean, TargetChoice::X86, opts).unwrap();
        let tuned = |r: &str| r.lines().find(|l| l.contains("tuned best")).map(str::to_owned);
        assert_eq!(tuned(&first), tuned(&second));
        let compiles = second
            .lines()
            .find(|l| l.starts_with("compilations:"))
            .and_then(|l| l.split_whitespace().nth(1).map(str::to_owned))
            .unwrap();
        assert_eq!(compiles, "0", "warm autotune must not compile: {second}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_subcommand_reports_verifies_compacts_and_gcs() {
        let src = demo_source();
        let dir = std::env::temp_dir().join(format!("optinline-cli-admin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = EvalOptions { cache_dir: Some(dir.clone()), ..Default::default() };
        cmd_search(&src, 18, TargetChoice::X86, opts).unwrap();

        let stats = cmd_cache(CacheAction::Stats, &dir, None).unwrap();
        assert!(stats.contains("scopes:          1"), "{stats}");
        assert!(stats.contains("entries:"), "{stats}");

        let verify = cmd_cache(CacheAction::Verify, &dir, None).unwrap();
        assert!(verify.contains("malformed lines: 0"), "{verify}");
        assert!(verify.contains("unreadable logs: 0"), "{verify}");

        let compact = cmd_cache(CacheAction::Compact, &dir, None).unwrap();
        assert!(compact.contains("reclaimed:"), "{compact}");

        assert!(cmd_cache(CacheAction::Gc, &dir, None).is_err(), "gc without budget must fail");
        let gc = cmd_cache(CacheAction::Gc, &dir, Some(1)).unwrap();
        assert!(gc.contains("evicted scopes:  1"), "{gc}");
        // The budget is enforced: nothing but the (tiny) index remains.
        let post = cmd_cache(CacheAction::Stats, &dir, None).unwrap();
        assert!(post.contains("scopes:          0"), "{post}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_verify_fails_on_damaged_store() {
        let dir = std::env::temp_dir().join(format!("optinline-cli-damage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("ab")).unwrap();
        // A log whose header is garbage is unreadable damage.
        std::fs::write(dir.join("ab").join(format!("{:030x}.log", 7)), "not a store log\n")
            .unwrap();
        let err = cmd_cache(CacheAction::Verify, &dir, None).unwrap_err();
        assert!(err.to_string().contains("unreadable logs: 1"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn search_imports_legacy_flat_cache_files() {
        use optinline_core::{cache_meta, module_fingerprint};
        let src = demo_source();
        let dir = std::env::temp_dir().join(format!("optinline-cli-legacy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A pre-store flat v2 file with the module's true identity: one
        // absurd entry for the all-no-inline key, which the search will
        // then trust instead of compiling.
        let module = load_module(&src).unwrap();
        let fp = module_fingerprint(&module, "x86-like");
        let meta = cache_meta(&module, "x86-like");
        let sanitized = meta.replace(['\n', '\r'], " ");
        std::fs::write(
            dir.join(format!("{fp:032x}.sizes")),
            format!("optinline-cache v2\nmeta {sanitized}\n424242 -\n"),
        )
        .unwrap();
        let opts =
            EvalOptions { show_stats: true, cache_dir: Some(dir.clone()), ..Default::default() };
        let report = cmd_search(&src, 18, TargetChoice::X86, opts).unwrap();
        assert!(
            report.contains("no inlining:        424242 B"),
            "legacy entry must be served: {report}"
        );
        assert!(report.contains("imported"), "{report}");
        // The flat file is retired into the sharded layout.
        assert!(!dir.join(format!("{fp:032x}.sizes")).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn search_budget_gc_keeps_the_directory_within_budget() {
        let src = demo_source();
        let other = cmd_gen(12, 5, 2).unwrap();
        let dir = std::env::temp_dir().join(format!("optinline-cli-budget-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Populate two scopes, then rerun with a small budget: the store
        // may evict the cold scope but must keep the one the run just used
        // (it holds a live handle during GC and is newest-recency anyway).
        let opts = |budget| EvalOptions {
            cache_dir: Some(dir.clone()),
            cache_budget_bytes: budget,
            ..Default::default()
        };
        cmd_search(&other, 18, TargetChoice::X86, opts(None)).unwrap();
        cmd_search(&src, 18, TargetChoice::X86, opts(None)).unwrap();
        cmd_search(&src, 18, TargetChoice::X86, opts(Some(1))).unwrap();
        let stats = cmd_cache(CacheAction::Stats, &dir, None).unwrap();
        assert!(stats.contains("scopes:          1"), "cold scope must be evicted: {stats}");
        // The surviving scope still warm-starts.
        let warm = cmd_search(&src, 18, TargetChoice::X86, opts(None)).unwrap();
        let compiles = warm
            .lines()
            .find(|l| l.starts_with("compilations done:"))
            .and_then(|l| l.split_whitespace().nth(2).map(str::to_owned))
            .unwrap();
        assert_eq!(compiles, "0", "survivor must stay warm: {warm}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn search_renders_pipeline_table_under_pass_stats() {
        let src = demo_source();
        let report = cmd_search(
            &src,
            18,
            TargetChoice::X86,
            EvalOptions { show_pass_stats: true, ..Default::default() },
        )
        .unwrap();
        assert!(report.contains("pass stats:"), "{report}");
        assert!(report.contains("analysis cache:"), "{report}");
    }
}
