//! # optinline-cli
//!
//! The command-line driver a downstream user actually touches: it reads
//! modules in the textual IR format (see `optinline-ir`'s printer/parser),
//! runs the size pipeline under a chosen inlining strategy, searches for
//! the optimal configuration, autotunes, interprets, and generates
//! corpora.
//!
//! ```text
//! optinline gen --seed 7 --internal 8 -o demo.ir
//! optinline stats demo.ir
//! optinline optimize demo.ir --strategy heuristic --target x86
//! optinline search demo.ir --bits 16
//! optinline autotune demo.ir --rounds 4 --init both
//! optinline run demo.ir
//! ```
//!
//! The library half exposes each subcommand as a function returning its
//! report as a `String`, so the whole surface is unit-testable without
//! spawning processes; `main.rs` is a thin argv shim.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod serve;

use optinline_callgraph::{component_count, InlineGraph, PartitionStrategy};
use optinline_codegen::{text_size, Target, WasmLike, X86Like};
use optinline_core::autotune::Autotuner;
use optinline_core::tree::{evaluate_inlining_tree, space_size, try_build_inlining_tree};
use optinline_core::{
    cache_meta, evaluate_inlining_tree_dag, module_cycles, module_fingerprint, objective_scope,
    Evaluator, EvaluatorStats, InliningConfiguration, ParetoFront, PersistentCache,
    PersistentEvaluator, SearchSession, SizeEvaluator, SpeedEvaluator, WorkerPool,
};
use optinline_heuristics::{baselines, CostModelInliner, TrialInliner};
use optinline_ir::{parse_module, Measurement, Module};

pub use optinline_core::Objective;
use optinline_opt::{optimize_os_report, ForcedDecisions, PipelineOptions};
use optinline_store::LocalStore;
use std::error::Error;
use std::fmt::Write as _;
use std::path::PathBuf;

/// A boxed error with message context, the CLI's uniform failure type.
pub type CliError = Box<dyn Error>;

/// Which size target to measure against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TargetChoice {
    /// The x86-64-flavoured model (default).
    #[default]
    X86,
    /// The WebAssembly-flavoured model.
    Wasm,
}

impl TargetChoice {
    /// Parses `x86` / `wasm`.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "x86" => Ok(TargetChoice::X86),
            "wasm" => Ok(TargetChoice::Wasm),
            other => Err(format!("unknown target `{other}` (expected x86|wasm)").into()),
        }
    }

    fn boxed(self) -> Box<dyn Target> {
        match self {
            TargetChoice::X86 => Box::new(X86Like),
            TargetChoice::Wasm => Box::new(WasmLike),
        }
    }

    fn as_dyn(&self) -> &'static dyn Target {
        match self {
            TargetChoice::X86 => &X86Like,
            TargetChoice::Wasm => &WasmLike,
        }
    }
}

/// Which inlining strategy `optimize` should execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StrategyChoice {
    /// Inline nothing.
    Never,
    /// Inline everything (recursion-bounded).
    Always,
    /// The LLVM-`-Os`-like cost model (default).
    #[default]
    Heuristic,
    /// Greedy measured trials.
    Trial,
}

impl StrategyChoice {
    /// Parses `never` / `always` / `heuristic` / `trial`.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "never" => Ok(StrategyChoice::Never),
            "always" => Ok(StrategyChoice::Always),
            "heuristic" => Ok(StrategyChoice::Heuristic),
            "trial" => Ok(StrategyChoice::Trial),
            other => {
                Err(format!("unknown strategy `{other}` (expected never|always|heuristic|trial)")
                    .into())
            }
        }
    }

    /// Computes this strategy's configuration for a module.
    pub fn configuration(self, module: &Module, target: &dyn Target) -> InliningConfiguration {
        let map = match self {
            StrategyChoice::Never => baselines::never_inline(module),
            StrategyChoice::Always => baselines::always_inline(module),
            StrategyChoice::Heuristic => CostModelInliner::default().decide(module, target),
            StrategyChoice::Trial => TrialInliner::default().decide(module, target),
        };
        InliningConfiguration::from_decisions(map)
    }
}

/// Evaluator selection and reporting options for `search` / `autotune`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalOptions {
    /// Use the component-scoped incremental evaluator (default); `false`
    /// forces whole-module compiles (`--full-eval`).
    pub incremental: bool,
    /// Append the evaluator's counter line to the report (`--stats`).
    pub show_stats: bool,
    /// Append the aggregated per-pass / analysis-cache table
    /// (`--pass-stats`).
    pub show_pass_stats: bool,
    /// Worker count for the task-DAG search executor (`--jobs`). `None`
    /// uses the process-wide pool; `Some(1)` takes the sequential
    /// `evaluate_inlining_tree` path exactly; `Some(n)` drives the DAG
    /// with `n` lanes (the caller plus `n - 1` pool workers).
    pub jobs: Option<usize>,
    /// Directory for the persistent cross-run evaluation cache
    /// (`--cache-dir`). `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// Disable the persistent cache even when `cache_dir` is set
    /// (`--no-persist`).
    pub no_persist: bool,
    /// Byte budget for the evaluation store (`--cache-budget-bytes`):
    /// after the run, least-recently-used scope logs are evicted until the
    /// cache directory fits. `None` leaves the store unbounded.
    pub cache_budget_bytes: Option<u64>,
    /// What to optimize (`--objective`): size (default, byte-identical to
    /// the historical output), speed, or the Pareto front over both.
    pub objective: Objective,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            incremental: true,
            show_stats: false,
            show_pass_stats: false,
            jobs: None,
            cache_dir: None,
            no_persist: false,
            cache_budget_bytes: None,
            objective: Objective::Size,
        }
    }
}

impl EvalOptions {
    /// Opens the persistent evaluation cache these options ask for, if
    /// any: one store scope addressed by the evaluator's `memo_scope`
    /// fingerprint (module text + target + pipeline options), with the
    /// older per-module fingerprint passed along so a pre-store flat cache
    /// file is imported once (or cleanly ignored if its identity differs).
    fn open_cache(
        &self,
        ev: &SizeEvaluator,
        objective: Objective,
    ) -> Result<Option<PersistentCache>, CliError> {
        match (&self.cache_dir, self.no_persist) {
            (Some(dir), false) => {
                let legacy = module_fingerprint(ev.module(), ev.target().name());
                let base = ev.memo_scope().unwrap_or(legacy);
                // Size keeps its historical scope; cycles-carrying
                // objectives get a scope derived from it plus the cost
                // model, so size-only and speed entries never alias.
                let fp = objective_scope(base, objective, ev.cost_model());
                // Recorded in the log and verified on reopen, so a
                // fingerprint collision or stale file restarts the scope
                // instead of serving another module's sizes.
                let meta = cache_meta(ev.module(), ev.target().name());
                // Legacy flat files hold size-only entries under the size
                // identity; they are only importable into the size scope.
                let import = (!objective.wants_cycles()).then_some(legacy);
                Ok(Some(PersistentCache::open_scoped(dir, fp, import, &meta)?))
            }
            _ => Ok(None),
        }
    }

    /// Runs the post-run size-budgeted GC these options ask for, if any.
    fn maybe_gc(&self, cache: &Option<PersistentCache>) -> Result<(), CliError> {
        if let (Some(c), Some(budget)) = (cache, self.cache_budget_bytes) {
            c.store().gc(budget)?;
        }
        Ok(())
    }
}

/// Pipeline scheduling and reporting options for `optimize`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct OptimizeOptions {
    /// Run the legacy whole-module sweep scheduler instead of the
    /// change-driven worklist (`--full-sweep`). The two produce
    /// byte-identical modules; this exists for benchmarking and as the
    /// reference the scheduling oracle compares against.
    pub full_sweep: bool,
    /// Append the per-pass invocation/changed table plus analysis-cache
    /// and scheduling counters to the report (`--pass-stats`).
    pub pass_stats: bool,
    /// What to measure (`--objective`): `Size` keeps the historical report
    /// byte-identical; cycles-aware objectives append interpreted-cycle
    /// lines for the strategy's one configuration.
    pub objective: Objective,
}

/// Parses a module from textual IR, verifying it.
pub fn load_module(source: &str) -> Result<Module, CliError> {
    let module = parse_module(source)?;
    optinline_ir::verify_module(&module)?;
    Ok(module)
}

/// `optinline print` — parse, verify, pretty-print (round-trip check).
pub fn cmd_print(source: &str) -> Result<String, CliError> {
    let module = load_module(source)?;
    Ok(module.to_string())
}

/// `optinline stats` — structural summary of a module.
pub fn cmd_stats(source: &str) -> Result<String, CliError> {
    let module = load_module(source)?;
    let graph = InlineGraph::from_module(&module);
    let sites = module.inlinable_sites().len();
    let mut out = String::new();
    let _ = writeln!(out, "module:              {}", module.name);
    let _ = writeln!(out, "functions:           {}", module.func_count());
    let _ = writeln!(out, "instructions:        {}", module.inst_count());
    let _ = writeln!(out, "globals:             {}", module.globals().len());
    let _ = writeln!(out, "inlinable sites:     {sites}");
    let _ = writeln!(out, "graph components:    {}", component_count(&graph));
    let _ =
        writeln!(out, "bridge groups:       {}", optinline_callgraph::bridge_groups(&graph).len());
    let _ = writeln!(out, "naive space:         2^{sites}");
    match try_build_inlining_tree(&graph, PartitionStrategy::Paper, 1 << 22) {
        Some(tree) => {
            let _ = writeln!(out, "recursive space:     {} evaluations", space_size(&tree));
        }
        None => {
            let _ = writeln!(out, "recursive space:     > 2^22 (not exhaustively explorable)");
        }
    }
    let _ = writeln!(out, "x86-like text size:  {} B (unoptimized)", text_size(&module, &X86Like));
    let _ = writeln!(out, "wasm-like text size: {} B (unoptimized)", text_size(&module, &WasmLike));
    Ok(out)
}

/// `optinline optimize` — run the pipeline under a strategy; returns the
/// report and the optimized module's text.
pub fn cmd_optimize(
    source: &str,
    strategy: StrategyChoice,
    target: TargetChoice,
    opts: OptimizeOptions,
) -> Result<(String, String), CliError> {
    let (report, module, _) = cmd_optimize_measured(source, strategy, target, opts)?;
    Ok((report, module))
}

/// [`cmd_optimize`], additionally returning the optimized module's
/// [`Measurement`] (what the serve protocol reports on `done` events).
pub fn cmd_optimize_measured(
    source: &str,
    strategy: StrategyChoice,
    target: TargetChoice,
    opts: OptimizeOptions,
) -> Result<(String, String, Measurement), CliError> {
    let module = load_module(source)?;
    let config = strategy.configuration(&module, target.as_dyn());
    let mut optimized = module.clone();
    let report = optimize_os_report(
        &mut optimized,
        &ForcedDecisions::new(config.decisions().clone()),
        PipelineOptions { full_sweep: opts.full_sweep, ..PipelineOptions::default() },
    );
    let t = target.boxed();
    let before = text_size(&module, t.as_ref());
    let after = text_size(&optimized, t.as_ref());
    let mut out = String::new();
    let _ = writeln!(out, "strategy:        {strategy:?}");
    let _ = writeln!(out, "target:          {}", t.name());
    let _ = writeln!(
        out,
        "scheduler:       {}",
        if opts.full_sweep { "full sweep (legacy)" } else { "change-driven worklist" }
    );
    let _ = writeln!(
        out,
        "sites inlined:   {} of {}",
        config.inlined_count(),
        config.decisions().len()
    );
    let _ = writeln!(out, "call expansions: {}", report.inlined);
    let _ = writeln!(
        out,
        "size:            {before} B -> {after} B ({:.1}%)",
        100.0 * after as f64 / before as f64
    );
    let measurement = if opts.objective.wants_cycles() {
        let cost = optinline_ir::interp::CostModel::default();
        let cycles_before = module_cycles(&module, &cost);
        let cycles_after = module_cycles(&optimized, &cost);
        let fmt = |c: Option<u64>| match c {
            Some(c) => c.to_string(),
            None => "n/a".to_string(),
        };
        let _ = writeln!(out, "objective:       {}", opts.objective);
        let _ = writeln!(out, "cycles:          {} -> {}", fmt(cycles_before), fmt(cycles_after));
        match cycles_after {
            Some(c) => Measurement::with_cycles(after, c),
            None => Measurement::size_only(after),
        }
    } else {
        Measurement::size_only(after)
    };
    if opts.pass_stats {
        out.push_str(&report.stats.render());
    }
    Ok((out, optimized.to_string(), measurement))
}

/// `optinline search` — exhaustive optimum through the recursively
/// partitioned space, compared against the baseline strategies.
pub fn cmd_search(
    source: &str,
    bits: u32,
    target: TargetChoice,
    eval: EvalOptions,
) -> Result<String, CliError> {
    Ok(cmd_search_measured(source, bits, target, eval)?.0)
}

/// [`cmd_search`], additionally returning the winning measurement (what
/// the serve protocol reports on `done` events). Under `--objective
/// pareto` the measurement is the front's smallest-size point.
pub fn cmd_search_measured(
    source: &str,
    bits: u32,
    target: TargetChoice,
    eval: EvalOptions,
) -> Result<(String, Option<Measurement>), CliError> {
    match eval.objective {
        Objective::Size => search_size(source, bits, target, eval).map(|(r, m)| (r, Some(m))),
        Objective::Speed => search_speed(source, bits, target, eval).map(|(r, m)| (r, Some(m))),
        Objective::Pareto => search_pareto(source, bits, target, eval),
    }
}

/// Builds the search tree or reports that the pruned space is too large.
fn build_search_tree(module: &Module, bits: u32) -> Result<optinline_core::InliningTree, CliError> {
    let graph = InlineGraph::from_module(module);
    try_build_inlining_tree(&graph, PartitionStrategy::Paper, 1u128 << bits).ok_or_else(|| {
        format!(
            "recursively partitioned space exceeds 2^{bits} evaluations; \
             raise --bits or use `autotune`"
        )
        .into()
    })
}

/// `size B, cycles cycles` — the two-metric report form.
fn fmt_measurement(m: Measurement) -> String {
    match m.cycles {
        Some(c) => format!("{} B, {c} cycles", m.size),
        None => format!("{} B, no cycles (nothing executable)", m.size),
    }
}

/// The historical size-objective search, byte-identical to every release
/// before measurements existed.
fn search_size(
    source: &str,
    bits: u32,
    target: TargetChoice,
    eval: EvalOptions,
) -> Result<(String, Measurement), CliError> {
    let module = load_module(source)?;
    let n = module.inlinable_sites().len();
    let tree = build_search_tree(&module, bits)?;
    let ev = SizeEvaluator::new(module, target.boxed(), eval.incremental);
    let evals = space_size(&tree);
    let cache = eval.open_cache(&ev, Objective::Size)?;
    let persisted = cache.as_ref().map(|c| PersistentEvaluator::new(&ev, c, ev.sites().clone()));
    let search_ev: &dyn Evaluator = match &persisted {
        Some(p) => p,
        None => &ev,
    };
    let session = SearchSession::new();
    let (config, size) = run_search(&tree, search_ev, eval.jobs, &session);
    let heuristic = StrategyChoice::Heuristic.configuration(ev.module(), ev.target());
    let h_size = search_ev.size_of(&heuristic);
    let none = search_ev.size_of(&InliningConfiguration::clean_slate());
    // Commit buffered puts before the budget GC measures the directory
    // (and before any abort path past this point could drop them).
    if let Some(c) = &cache {
        c.flush()?;
    }
    eval.maybe_gc(&cache)?;
    let mut out = String::new();
    let _ = writeln!(out, "sites:              {n} (naive space 2^{n})");
    let _ = writeln!(out, "evaluations needed: {evals}");
    let _ = writeln!(out, "compilations done:  {} (memoized)", ev.stats().compiles);
    let _ = writeln!(out, "optimal size:       {size} B");
    let _ = writeln!(out, "optimal config:     {config}");
    let _ =
        writeln!(out, "no inlining:        {none} B ({:.1}%)", 100.0 * none as f64 / size as f64);
    let _ = writeln!(
        out,
        "heuristic:          {h_size} B ({:.1}%)",
        100.0 * h_size as f64 / size as f64
    );
    if eval.show_stats {
        let _ =
            writeln!(out, "evaluator:          {}", merged_stats(&ev, &session, &cache).render());
    }
    if eval.show_pass_stats {
        out.push_str(&ev.stats().pipeline.render());
    }
    Ok((out, Measurement::size_only(size)))
}

/// Speed-objective search: the same tree walk with simulated cycles as
/// the minimized scalar, via [`SpeedEvaluator`]. Cached in a store scope
/// derived from the size domain plus the cost model, so warm size caches
/// are neither reused nor disturbed.
fn search_speed(
    source: &str,
    bits: u32,
    target: TargetChoice,
    eval: EvalOptions,
) -> Result<(String, Measurement), CliError> {
    let module = load_module(source)?;
    let n = module.inlinable_sites().len();
    let tree = build_search_tree(&module, bits)?;
    let ev = SizeEvaluator::new(module, target.boxed(), eval.incremental);
    let evals = space_size(&tree);
    let cache = eval.open_cache(&ev, Objective::Speed)?;
    let persisted = cache.as_ref().map(|c| PersistentEvaluator::new(&ev, c, ev.sites().clone()));
    let base: &dyn Evaluator = match &persisted {
        Some(p) => p,
        None => &ev,
    };
    let speed = SpeedEvaluator::new(base, ev.cost_model());
    let session = SearchSession::new();
    let (config, _) = run_search(&tree, &speed, eval.jobs, &session);
    let best = base.measure(&config, Objective::Speed);
    let heuristic = StrategyChoice::Heuristic.configuration(ev.module(), ev.target());
    let h = base.measure(&heuristic, Objective::Speed);
    let none = base.measure(&InliningConfiguration::clean_slate(), Objective::Speed);
    if let Some(c) = &cache {
        c.flush()?;
    }
    eval.maybe_gc(&cache)?;
    // A module with nothing executable degrades to the size scalar — the
    // same fallback SpeedEvaluator::size_of applies during the search.
    let scalar = |m: Measurement| m.cycles.unwrap_or(m.size);
    let best_scalar = scalar(best);
    let mut out = String::new();
    let _ = writeln!(out, "sites:              {n} (naive space 2^{n})");
    let _ = writeln!(out, "evaluations needed: {evals}");
    let _ = writeln!(out, "compilations done:  {} (memoized)", ev.stats().compiles);
    let _ = writeln!(out, "objective:          speed (simulated cycles)");
    match best.cycles {
        Some(c) => {
            let _ = writeln!(out, "optimal cycles:     {c}");
        }
        None => {
            let _ = writeln!(out, "optimal cycles:     n/a (nothing executable; size used)");
        }
    }
    let _ = writeln!(out, "optimal size:       {} B", best.size);
    let _ = writeln!(out, "optimal config:     {config}");
    let _ = writeln!(
        out,
        "no inlining:        {} cycles ({:.1}%)",
        scalar(none),
        100.0 * scalar(none) as f64 / best_scalar as f64
    );
    let _ = writeln!(
        out,
        "heuristic:          {} cycles ({:.1}%)",
        scalar(h),
        100.0 * scalar(h) as f64 / best_scalar as f64
    );
    if eval.show_stats {
        let _ =
            writeln!(out, "evaluator:          {}", merged_stats(&ev, &session, &cache).render());
    }
    if eval.show_pass_stats {
        out.push_str(&ev.stats().pipeline.render());
    }
    Ok((out, best))
}

/// Pareto-objective search: run the exhaustive search once per scalar
/// objective, then fold both winners and both baselines into a dominance
/// front. The returned measurement is the front's smallest-size point.
fn search_pareto(
    source: &str,
    bits: u32,
    target: TargetChoice,
    eval: EvalOptions,
) -> Result<(String, Option<Measurement>), CliError> {
    let module = load_module(source)?;
    let n = module.inlinable_sites().len();
    let tree = build_search_tree(&module, bits)?;
    let ev = SizeEvaluator::new(module, target.boxed(), eval.incremental);
    let evals = space_size(&tree);
    // Size leg: its own store scope (the historical one), its own session.
    let size_cfg = {
        let cache = eval.open_cache(&ev, Objective::Size)?;
        let persisted =
            cache.as_ref().map(|c| PersistentEvaluator::new(&ev, c, ev.sites().clone()));
        let base: &dyn Evaluator = match &persisted {
            Some(p) => p,
            None => &ev,
        };
        let session = SearchSession::new();
        let (config, _) = run_search(&tree, base, eval.jobs, &session);
        if let Some(c) = &cache {
            c.flush()?;
        }
        config
    };
    // Speed leg plus the front measurements, in the shared cycles scope.
    let cache = eval.open_cache(&ev, Objective::Pareto)?;
    let persisted = cache.as_ref().map(|c| PersistentEvaluator::new(&ev, c, ev.sites().clone()));
    let base: &dyn Evaluator = match &persisted {
        Some(p) => p,
        None => &ev,
    };
    let speed = SpeedEvaluator::new(base, ev.cost_model());
    let session = SearchSession::new();
    let (speed_cfg, _) = run_search(&tree, &speed, eval.jobs, &session);
    let heuristic = StrategyChoice::Heuristic.configuration(ev.module(), ev.target());
    let mut front = ParetoFront::new();
    for config in [InliningConfiguration::clean_slate(), heuristic, size_cfg.clone(), speed_cfg] {
        let measured = base.measure(&config, Objective::Pareto);
        front.insert(config, measured);
    }
    if let Some(c) = &cache {
        c.flush()?;
    }
    eval.maybe_gc(&cache)?;
    let mut out = String::new();
    let _ = writeln!(out, "sites:              {n} (naive space 2^{n})");
    let _ = writeln!(out, "evaluations needed: {evals} per leg");
    let _ = writeln!(out, "compilations done:  {} (memoized)", ev.stats().compiles);
    let _ = writeln!(out, "objective:          pareto (size, cycles)");
    if let Some(p) = front.min_size() {
        let _ =
            writeln!(out, "size-optimal:       {} :: {}", fmt_measurement(p.measurement), p.config);
    }
    if let Some(p) = front.min_cycles() {
        let _ =
            writeln!(out, "speed-optimal:      {} :: {}", fmt_measurement(p.measurement), p.config);
    }
    let _ = writeln!(out, "pareto front:       {} point(s)", front.len());
    for p in front.points() {
        let _ = writeln!(out, "  - {} :: {}", fmt_measurement(p.measurement), p.config);
    }
    if eval.show_stats {
        let _ =
            writeln!(out, "evaluator:          {}", merged_stats(&ev, &session, &cache).render());
    }
    if eval.show_pass_stats {
        out.push_str(&ev.stats().pipeline.render());
    }
    Ok((out, front.min_size().map(|p| p.measurement)))
}

/// Dispatches a tree evaluation according to `--jobs`: `Some(1)` is the
/// sequential Algorithm 1 walk, anything else the task-DAG executor — on a
/// private pool of `n - 1` workers for `Some(n)`, on the process-wide pool
/// for `None`. Either way the result is byte-identical.
fn run_search(
    tree: &optinline_core::InliningTree,
    evaluator: &dyn Evaluator,
    jobs: Option<usize>,
    session: &SearchSession,
) -> (InliningConfiguration, u64) {
    let base = InliningConfiguration::clean_slate();
    match jobs {
        Some(1) => evaluate_inlining_tree(tree, evaluator, base),
        Some(n) => {
            let pool = WorkerPool::new(n.saturating_sub(1));
            evaluate_inlining_tree_dag(tree, evaluator, base, &pool, Some(session))
        }
        None => {
            evaluate_inlining_tree_dag(tree, evaluator, base, WorkerPool::global(), Some(session))
        }
    }
}

/// The evaluator's counters with the executor's, the persistent cache's,
/// and the backing store's folded in — the `--stats` line.
fn merged_stats(
    ev: &SizeEvaluator,
    session: &SearchSession,
    cache: &Option<PersistentCache>,
) -> EvaluatorStats {
    let mut stats = ev.stats();
    stats.absorb_executor(session.stats());
    if let Some(c) = cache {
        stats.absorb_persist(c.stats());
        stats.absorb_store(c.store_stats());
    }
    stats
}

/// Initialization mode for `autotune`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InitChoice {
    /// Start from all-no-inline.
    Clean,
    /// Start from the heuristic's decisions.
    Heuristic,
    /// Run both and keep the better (default; the paper's combined mode).
    #[default]
    Both,
}

impl InitChoice {
    /// Parses `clean` / `heuristic` / `both`.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "clean" => Ok(InitChoice::Clean),
            "heuristic" => Ok(InitChoice::Heuristic),
            "both" => Ok(InitChoice::Both),
            other => Err(format!("unknown init `{other}` (expected clean|heuristic|both)").into()),
        }
    }
}

/// `optinline autotune` — the paper's Algorithm 3 with round-based and
/// combined variants.
pub fn cmd_autotune(
    source: &str,
    rounds: usize,
    init: InitChoice,
    target: TargetChoice,
    eval: EvalOptions,
) -> Result<String, CliError> {
    Ok(cmd_autotune_measured(source, rounds, init, target, eval)?.0)
}

/// [`cmd_autotune`], additionally returning the tuned best's measurement
/// (what the serve protocol reports on `done` events). Under `--objective
/// pareto` the measurement is the front's smallest-size point; `None`
/// when the module has nothing to tune.
pub fn cmd_autotune_measured(
    source: &str,
    rounds: usize,
    init: InitChoice,
    target: TargetChoice,
    eval: EvalOptions,
) -> Result<(String, Option<Measurement>), CliError> {
    match eval.objective {
        Objective::Size => autotune_size(source, rounds, init, target, eval),
        Objective::Speed => autotune_speed(source, rounds, init, target, eval),
        Objective::Pareto => autotune_pareto(source, rounds, init, target, eval),
    }
}

/// Report line for a module with nothing to tune, shared by every
/// objective.
const NOTHING_TO_TUNE: &str = "module has no inlinable call sites; nothing to tune\n";

/// The historical size-objective autotuner, byte-identical to every
/// release before measurements existed.
fn autotune_size(
    source: &str,
    rounds: usize,
    init: InitChoice,
    target: TargetChoice,
    eval: EvalOptions,
) -> Result<(String, Option<Measurement>), CliError> {
    let module = load_module(source)?;
    let ev = SizeEvaluator::new(module, target.boxed(), eval.incremental);
    let sites = ev.sites().clone();
    if sites.is_empty() {
        return Ok((NOTHING_TO_TUNE.into(), None));
    }
    let cache = eval.open_cache(&ev, Objective::Size)?;
    let persisted = cache.as_ref().map(|c| PersistentEvaluator::new(&ev, c, ev.sites().clone()));
    let search_ev: &dyn Evaluator = match &persisted {
        Some(p) => p,
        None => &ev,
    };
    let heuristic = StrategyChoice::Heuristic.configuration(ev.module(), ev.target());
    let h_size = search_ev.size_of(&heuristic);
    let tuner = Autotuner::new(search_ev, sites.clone());
    let mut out = String::new();
    let mut outcomes = Vec::new();
    if init != InitChoice::Heuristic {
        let clean = tuner.clean_slate(rounds);
        let _ = writeln!(
            out,
            "clean slate:     {} B after {} round(s)",
            clean.best().size,
            clean.rounds.len()
        );
        outcomes.push(clean);
    }
    if init != InitChoice::Clean {
        let h = tuner.run(heuristic.clone(), rounds);
        let _ =
            writeln!(out, "heuristic init:  {} B after {} round(s)", h.best().size, h.rounds.len());
        outcomes.push(h);
    }
    let best = Autotuner::combine(outcomes.iter());
    let _ = writeln!(out, "baseline:        {h_size} B (100.0%)");
    let _ = writeln!(
        out,
        "tuned best:      {} B ({:.1}%)",
        best.size,
        100.0 * best.size as f64 / h_size as f64
    );
    let _ = writeln!(out, "configuration:   {}", best.config);
    let _ = writeln!(out, "compilations:    {}", ev.stats().compiles);
    if let Some(c) = &cache {
        c.flush()?;
    }
    eval.maybe_gc(&cache)?;
    if eval.show_stats {
        let mut stats = ev.stats();
        if let Some(c) = &cache {
            stats.absorb_persist(c.stats());
            stats.absorb_store(c.store_stats());
        }
        let _ = writeln!(out, "evaluator:       {}", stats.render());
    }
    if eval.show_pass_stats {
        out.push_str(&ev.stats().pipeline.render());
    }
    Ok((out, Some(Measurement::size_only(best.size))))
}

/// Speed-objective autotuner: the same hill climb with simulated cycles
/// as the minimized scalar, via [`SpeedEvaluator`].
fn autotune_speed(
    source: &str,
    rounds: usize,
    init: InitChoice,
    target: TargetChoice,
    eval: EvalOptions,
) -> Result<(String, Option<Measurement>), CliError> {
    let module = load_module(source)?;
    let ev = SizeEvaluator::new(module, target.boxed(), eval.incremental);
    let sites = ev.sites().clone();
    if sites.is_empty() {
        return Ok((NOTHING_TO_TUNE.into(), None));
    }
    let cache = eval.open_cache(&ev, Objective::Speed)?;
    let persisted = cache.as_ref().map(|c| PersistentEvaluator::new(&ev, c, ev.sites().clone()));
    let base: &dyn Evaluator = match &persisted {
        Some(p) => p,
        None => &ev,
    };
    let speed = SpeedEvaluator::new(base, ev.cost_model());
    let heuristic = StrategyChoice::Heuristic.configuration(ev.module(), ev.target());
    // The scalar is cycles (size for a module with nothing executable —
    // SpeedEvaluator's uniform fallback).
    let h_cycles = speed.size_of(&heuristic);
    let tuner = Autotuner::new(&speed, sites.clone());
    let mut out = String::new();
    let _ = writeln!(out, "objective:       speed (simulated cycles)");
    let mut outcomes = Vec::new();
    if init != InitChoice::Heuristic {
        let clean = tuner.clean_slate(rounds);
        let _ = writeln!(
            out,
            "clean slate:     {} cycles after {} round(s)",
            clean.best().size,
            clean.rounds.len()
        );
        outcomes.push(clean);
    }
    if init != InitChoice::Clean {
        let h = tuner.run(heuristic.clone(), rounds);
        let _ = writeln!(
            out,
            "heuristic init:  {} cycles after {} round(s)",
            h.best().size,
            h.rounds.len()
        );
        outcomes.push(h);
    }
    let best = Autotuner::combine(outcomes.iter());
    let _ = writeln!(out, "baseline:        {h_cycles} cycles (100.0%)");
    let _ = writeln!(
        out,
        "tuned best:      {} cycles ({:.1}%)",
        best.size,
        100.0 * best.size as f64 / h_cycles as f64
    );
    let _ = writeln!(out, "configuration:   {}", best.config);
    let _ = writeln!(out, "compilations:    {}", ev.stats().compiles);
    let measurement = base.measure(&best.config, Objective::Speed);
    if let Some(c) = &cache {
        c.flush()?;
    }
    eval.maybe_gc(&cache)?;
    if eval.show_stats {
        let mut stats = ev.stats();
        if let Some(c) = &cache {
            stats.absorb_persist(c.stats());
            stats.absorb_store(c.store_stats());
        }
        let _ = writeln!(out, "evaluator:       {}", stats.render());
    }
    if eval.show_pass_stats {
        out.push_str(&ev.stats().pipeline.render());
    }
    Ok((out, Some(measurement)))
}

/// Pareto-objective autotuner: frontier-seeded hill climb over both
/// metrics at once ([`Autotuner::run_pareto`]); dominated configurations
/// are pruned as they are measured.
fn autotune_pareto(
    source: &str,
    rounds: usize,
    init: InitChoice,
    target: TargetChoice,
    eval: EvalOptions,
) -> Result<(String, Option<Measurement>), CliError> {
    let module = load_module(source)?;
    let ev = SizeEvaluator::new(module, target.boxed(), eval.incremental);
    let sites = ev.sites().clone();
    if sites.is_empty() {
        return Ok((NOTHING_TO_TUNE.into(), None));
    }
    let cache = eval.open_cache(&ev, Objective::Pareto)?;
    let persisted = cache.as_ref().map(|c| PersistentEvaluator::new(&ev, c, ev.sites().clone()));
    let base: &dyn Evaluator = match &persisted {
        Some(p) => p,
        None => &ev,
    };
    let heuristic = StrategyChoice::Heuristic.configuration(ev.module(), ev.target());
    let inits: Vec<InliningConfiguration> = match init {
        InitChoice::Clean => vec![InliningConfiguration::clean_slate()],
        InitChoice::Heuristic => vec![heuristic.clone()],
        InitChoice::Both => vec![InliningConfiguration::clean_slate(), heuristic.clone()],
    };
    let rounds = rounds.max(1);
    let tuner = Autotuner::new(base, sites.clone());
    let outcome = tuner.run_pareto(inits, rounds);
    let baseline = base.measure(&heuristic, Objective::Pareto);
    if let Some(c) = &cache {
        c.flush()?;
    }
    eval.maybe_gc(&cache)?;
    let mut out = String::new();
    let _ = writeln!(out, "objective:       pareto (size, cycles)");
    let _ = writeln!(out, "rounds:          {} of {rounds}", outcome.rounds);
    let _ = writeln!(out, "evaluations:     {}", outcome.evaluations);
    let _ = writeln!(out, "baseline:        {} (heuristic)", fmt_measurement(baseline));
    let _ = writeln!(out, "pareto front:    {} point(s)", outcome.front.len());
    for p in outcome.front.points() {
        let _ = writeln!(out, "  - {} :: {}", fmt_measurement(p.measurement), p.config);
    }
    let _ = writeln!(out, "compilations:    {}", ev.stats().compiles);
    if eval.show_stats {
        let mut stats = ev.stats();
        if let Some(c) = &cache {
            stats.absorb_persist(c.stats());
            stats.absorb_store(c.store_stats());
        }
        let _ = writeln!(out, "evaluator:       {}", stats.render());
    }
    if eval.show_pass_stats {
        out.push_str(&ev.stats().pipeline.render());
    }
    Ok((out, outcome.front.min_size().map(|p| p.measurement)))
}

/// `optinline run` — interpret the module's `main`.
pub fn cmd_run(source: &str) -> Result<String, CliError> {
    let module = load_module(source)?;
    let outcome = optinline_ir::interp::run_main(&module)?;
    let mut out = String::new();
    let _ = writeln!(out, "return value: {:?}", outcome.ret);
    let _ = writeln!(out, "globals:      {:?}", outcome.globals);
    let _ = writeln!(out, "cycles:       {}", outcome.cycles);
    let _ = writeln!(out, "steps:        {}", outcome.steps);
    Ok(out)
}

/// `optinline cfg` — render a function's control-flow graph as DOT.
pub fn cmd_cfg(source: &str, func_name: &str) -> Result<String, CliError> {
    let module = load_module(source)?;
    let fid = module
        .func_by_name(func_name)
        .ok_or_else(|| format!("no function named `{func_name}` in {}", module.name))?;
    Ok(optinline_ir::dot::function_cfg_dot(&module, fid))
}

/// `optinline link` — link several modules, optionally internalizing
/// everything except the kept symbols, and return the combined module's
/// text plus a summary line.
pub fn cmd_link(sources: &[String], keep: Option<&str>) -> Result<(String, String), CliError> {
    if sources.is_empty() {
        return Err("link needs at least one input".into());
    }
    let modules = sources.iter().map(|s| load_module(s)).collect::<Result<Vec<_>, _>>()?;
    let per_file_sites: usize = modules.iter().map(|m| m.inlinable_sites().len()).sum();
    let mut linked = optinline_ir::link_modules("linked", &modules);
    let mut demoted = 0;
    if let Some(keep) = keep {
        let kept: Vec<&str> = keep.split(',').map(str::trim).collect();
        demoted = optinline_ir::internalize_except(&mut linked, |name| kept.contains(&name));
    }
    optinline_ir::verify_module(&linked)?;
    let mut report = String::new();
    let _ = writeln!(report, "linked {} modules: {} functions", sources.len(), linked.func_count());
    let _ = writeln!(
        report,
        "inlinable sites: {} per-file -> {} linked",
        per_file_sites,
        linked.inlinable_sites().len()
    );
    if keep.is_some() {
        let _ = writeln!(report, "internalized:    {demoted} formerly-public functions");
    }
    Ok((report, linked.to_string()))
}

/// `optinline corpus` — materialize the synthetic suite as `.ir` files.
pub fn cmd_corpus(dir: &std::path::Path, small: bool) -> Result<String, CliError> {
    let scale =
        if small { optinline_workloads::Scale::Small } else { optinline_workloads::Scale::Full };
    let written = optinline_workloads::save_suite(dir, scale)?;
    Ok(format!(
        "wrote {} files under {}
",
        written.len(),
        dir.display()
    ))
}

/// `optinline check` — the differential fuzz loop: random modules ×
/// random configurations through the semantic and size oracles. Returns
/// the report on a clean run; a run with divergences or mismatches is an
/// `Err` carrying the same report, so the process exits non-zero (which is
/// what CI keys on).
pub fn cmd_check(
    cases: usize,
    seed: u64,
    reduce: bool,
    repro_dir: Option<&std::path::Path>,
) -> Result<String, CliError> {
    let options = optinline_check::FuzzOptions {
        cases,
        seed,
        reduce,
        repro_dir: repro_dir.map(std::path::Path::to_path_buf),
        ..Default::default()
    };
    let report = optinline_check::run_fuzz(&options)?;
    let rendered = report.render();
    if report.clean() {
        Ok(rendered)
    } else {
        Err(format!("differential check failed\n{rendered}").into())
    }
}

/// `optinline check --chaos N` — the standalone chaos oracle: N cases of
/// seeded fault injection against a live daemon plus crash/recovery
/// cycles against a store, asserting no hangs, byte-identical surviving
/// replies, exact accounting, and a clean `verify` after every restart.
/// A run with broken promises is an `Err` so the process exits non-zero.
pub fn cmd_check_chaos(cases: usize, seed: u64) -> Result<String, CliError> {
    let report = optinline_check::run_chaos(cases, seed);
    let mut rendered = report.render();
    rendered.push('\n');
    for m in &report.mismatches {
        let _ = writeln!(rendered, "  {m}");
    }
    if report.clean() {
        Ok(rendered)
    } else {
        Err(format!("chaos check failed\n{rendered}").into())
    }
}

/// `optinline check --demo-reduce` — seed a known fast-path size bug, let
/// the size oracle catch it, and shrink the trigger with the reducer. An
/// end-to-end proof that the harness detects and minimizes real failures.
pub fn cmd_demo_reduce(seed: u64, repro_dir: Option<&std::path::Path>) -> Result<String, CliError> {
    let demo = optinline_check::run_reducer_demo(seed, repro_dir)?;
    let mut out = String::new();
    let _ =
        writeln!(out, "seeded bug:      size_of inflated when `f3` present and ≥1 site inlined");
    let _ = writeln!(
        out,
        "reduced module:  {} -> {} function(s)",
        demo.functions_before, demo.functions_after
    );
    let _ = writeln!(out, "reduced config:  {} decision(s)", demo.config_decisions);
    let _ = writeln!(out, "predicate runs:  {}", demo.predicate_runs);
    if let Some(p) = &demo.repro_path {
        let _ = writeln!(out, "reproducer:      {}", p.display());
    }
    Ok(out)
}

/// `optinline gen` — emit a generated module as textual IR.
pub fn cmd_gen(seed: u64, n_internal: usize, clusters: usize) -> Result<String, CliError> {
    let module = optinline_workloads::generate_file(&optinline_workloads::GenParams {
        n_internal,
        clusters,
        ..optinline_workloads::GenParams::named(format!("gen_{seed}"), seed)
    });
    Ok(module.to_string())
}

/// What `optinline cache` should do to the evaluation store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheAction {
    /// Report entry/byte/counter totals.
    Stats,
    /// Evict least-recently-used scopes until the directory fits the
    /// `--cache-budget-bytes` budget.
    Gc,
    /// Structurally scan every log, report damage, and rebuild the index.
    Verify,
    /// Rewrite every scope log, dropping superseded and duplicate lines.
    Compact,
}

impl CacheAction {
    /// Parses `stats` / `gc` / `verify` / `compact`.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "stats" => Ok(CacheAction::Stats),
            "gc" => Ok(CacheAction::Gc),
            "verify" => Ok(CacheAction::Verify),
            "compact" => Ok(CacheAction::Compact),
            other => {
                Err(format!("unknown cache action `{other}` (expected stats|gc|verify|compact)")
                    .into())
            }
        }
    }
}

/// `optinline cache` — administer the on-disk evaluation store under
/// `--cache-dir`. `verify` returns an `Err` carrying its report when the
/// scan finds malformed lines or unreadable logs, so the process exits
/// non-zero (which is what CI keys on).
pub fn cmd_cache(
    action: CacheAction,
    dir: &std::path::Path,
    budget_bytes: Option<u64>,
) -> Result<String, CliError> {
    let store = LocalStore::shared(dir)?;
    let mut out = String::new();
    let _ = writeln!(out, "cache dir:       {}", dir.display());
    match action {
        CacheAction::Stats => {
            let stats = store.store_stats();
            let _ = writeln!(out, "scopes:          {}", stats.scopes);
            let _ = writeln!(out, "entries:         {}", stats.entries);
            let _ = writeln!(out, "disk bytes:      {}", store.disk_bytes()?);
        }
        CacheAction::Gc => {
            let budget =
                budget_bytes.ok_or("cache gc needs --cache-budget-bytes <n>".to_string())?;
            let report = store.gc(budget)?;
            let _ = writeln!(out, "budget:          {} B", report.budget_bytes);
            let _ = writeln!(
                out,
                "disk bytes:      {} B -> {} B",
                report.before_bytes, report.after_bytes
            );
            let _ = writeln!(out, "evicted scopes:  {}", report.evicted_scopes);
            let _ = writeln!(out, "evicted legacy:  {}", report.evicted_legacy);
        }
        CacheAction::Verify => {
            let report = store.verify()?;
            let _ = writeln!(out, "scopes:          {}", report.scopes);
            let _ = writeln!(out, "entries:         {}", report.entries);
            let _ = writeln!(out, "disk bytes:      {}", report.bytes);
            let _ = writeln!(out, "duplicate lines: {}", report.duplicate_lines);
            let _ = writeln!(out, "malformed lines: {}", report.malformed_lines);
            let _ = writeln!(out, "unreadable logs: {}", report.unreadable_logs);
            let _ = writeln!(out, "legacy files:    {}", report.legacy_files);
            let _ = writeln!(out, "foreign files:   {}", report.foreign_files);
            let _ = writeln!(out, "size-only lines: {}", report.size_only_lines);
            let _ = writeln!(out, "measured lines:  {}", report.measurement_lines);
            for mix in &report.mix {
                let _ = writeln!(
                    out,
                    "  scope {:032x}: {} size-only, {} measured",
                    mix.fingerprint, mix.size_only_lines, mix.measurement_lines
                );
            }
            let _ = writeln!(out, "index:           rebuilt");
            if !report.clean() {
                return Err(format!("cache verify found damage\n{out}").into());
            }
        }
        CacheAction::Compact => {
            let reclaimed = store.compact_all()?;
            let _ = writeln!(out, "reclaimed:       {reclaimed} B");
            let _ = writeln!(out, "disk bytes:      {}", store.disk_bytes()?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_source() -> String {
        cmd_gen(11, 5, 2).expect("generation succeeds")
    }

    #[test]
    fn gen_print_round_trips() {
        let src = demo_source();
        let printed = cmd_print(&src).unwrap();
        assert_eq!(printed, src);
    }

    #[test]
    fn stats_reports_structure() {
        let s = cmd_stats(&demo_source()).unwrap();
        assert!(s.contains("functions:"));
        assert!(s.contains("inlinable sites:"));
        assert!(s.contains("recursive space:"));
    }

    #[test]
    fn optimize_reports_sizes_for_every_strategy() {
        let src = demo_source();
        for strat in [
            StrategyChoice::Never,
            StrategyChoice::Always,
            StrategyChoice::Heuristic,
            StrategyChoice::Trial,
        ] {
            let (report, text) =
                cmd_optimize(&src, strat, TargetChoice::X86, OptimizeOptions::default()).unwrap();
            assert!(report.contains("size:"), "{strat:?}: {report}");
            // The optimized module still parses.
            load_module(&text).unwrap();
        }
    }

    #[test]
    fn search_finds_optimum_and_beats_strategies() {
        let src = demo_source();
        let report = cmd_search(&src, 18, TargetChoice::X86, EvalOptions::default()).unwrap();
        assert!(report.contains("optimal size:"));
        // Relative lines are >= 100%.
        for line in report.lines().filter(|l| l.contains('%')) {
            let pct: f64 = line
                .split('(')
                .nth(1)
                .and_then(|s| s.split('%').next())
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(100.0);
            assert!(pct >= 100.0 - 1e-9, "strategy beat the optimum: {line}");
        }
    }

    #[test]
    fn search_stats_line_and_full_eval_agree() {
        let src = demo_source();
        let inc = cmd_search(
            &src,
            18,
            TargetChoice::X86,
            EvalOptions { incremental: true, show_stats: true, ..Default::default() },
        )
        .unwrap();
        let full = cmd_search(
            &src,
            18,
            TargetChoice::X86,
            EvalOptions { incremental: false, show_stats: true, ..Default::default() },
        )
        .unwrap();
        assert!(inc.contains("evaluator:"), "{inc}");
        assert!(full.contains("evaluator:"), "{full}");
        let optimal =
            |r: &str| r.lines().find(|l| l.starts_with("optimal size:")).map(str::to_owned);
        assert_eq!(optimal(&inc), optimal(&full), "evaluators disagree on the optimum");
    }

    #[test]
    fn autotune_improves_or_matches_baseline() {
        let src = demo_source();
        let report =
            cmd_autotune(&src, 3, InitChoice::Both, TargetChoice::X86, EvalOptions::default())
                .unwrap();
        assert!(report.contains("tuned best:"));
        let pct: f64 = report
            .lines()
            .find(|l| l.contains("tuned best"))
            .and_then(|l| l.split('(').nth(1))
            .and_then(|s| s.split('%').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("percentage present");
        assert!(pct <= 100.0);
    }

    #[test]
    fn run_interprets_main() {
        let report = cmd_run(&demo_source()).unwrap();
        assert!(report.contains("cycles:"));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(cmd_print("not ir at all").is_err());
        assert!(TargetChoice::parse("arm").is_err());
        assert!(StrategyChoice::parse("magic").is_err());
        assert!(InitChoice::parse("warm").is_err());
    }

    #[test]
    fn search_refuses_oversized_spaces() {
        let src = cmd_gen(3, 20, 1).unwrap();
        let module = load_module(&src).unwrap();
        if module.inlinable_sites().len() > 12 {
            let err = cmd_search(&src, 4, TargetChoice::X86, EvalOptions::default());
            assert!(err.is_err() || module.inlinable_sites().len() <= 12);
        }
    }

    #[test]
    fn cfg_renders_dot_for_named_functions() {
        let src = demo_source();
        let dot = cmd_cfg(&src, "main").unwrap();
        assert!(dot.contains("digraph \"main\""));
        assert!(cmd_cfg(&src, "no_such_fn").is_err());
    }

    #[test]
    fn wasm_target_is_selectable() {
        let src = demo_source();
        let (report, _) =
            cmd_optimize(&src, StrategyChoice::Heuristic, TargetChoice::Wasm, Default::default())
                .unwrap();
        assert!(report.contains("wasm-like"));
    }

    #[test]
    fn pass_stats_table_appears_on_request() {
        let src = demo_source();
        let (plain, _) =
            cmd_optimize(&src, StrategyChoice::Heuristic, TargetChoice::X86, Default::default())
                .unwrap();
        assert!(!plain.contains("pass stats:"), "{plain}");
        let (with_stats, _) = cmd_optimize(
            &src,
            StrategyChoice::Heuristic,
            TargetChoice::X86,
            OptimizeOptions { pass_stats: true, ..Default::default() },
        )
        .unwrap();
        assert!(with_stats.contains("pass stats:"), "{with_stats}");
        assert!(with_stats.contains("analysis cache:"), "{with_stats}");
        assert!(with_stats.contains("scheduling:"), "{with_stats}");
    }

    #[test]
    fn full_sweep_and_worklist_report_identical_sizes() {
        let src = demo_source();
        let (wl_report, wl_text) =
            cmd_optimize(&src, StrategyChoice::Heuristic, TargetChoice::X86, Default::default())
                .unwrap();
        let (fs_report, fs_text) = cmd_optimize(
            &src,
            StrategyChoice::Heuristic,
            TargetChoice::X86,
            OptimizeOptions { full_sweep: true, ..Default::default() },
        )
        .unwrap();
        assert_eq!(wl_text, fs_text, "schedulers disagree on the optimized module");
        let size_line = |r: &str| r.lines().find(|l| l.starts_with("size:")).map(str::to_owned);
        assert_eq!(size_line(&wl_report), size_line(&fs_report));
        assert!(wl_report.contains("change-driven worklist"));
        assert!(fs_report.contains("full sweep (legacy)"));
    }

    #[test]
    fn search_output_is_identical_across_job_counts() {
        // --jobs 1 takes the sequential Algorithm 1 path; every other
        // setting flattens into the task-DAG executor. The report must be
        // byte-identical regardless.
        let src = demo_source();
        let opts = |jobs| EvalOptions { jobs, ..Default::default() };
        // "compilations done" may differ: concurrent lanes can race to
        // compile the same memo key (duplicated work, never a different
        // answer). Everything else — above all the optimum — must match.
        let masked = |report: String| -> String {
            report
                .lines()
                .filter(|l| !l.starts_with("compilations done:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let sequential = masked(cmd_search(&src, 18, TargetChoice::X86, opts(Some(1))).unwrap());
        for jobs in [None, Some(2), Some(4), Some(8)] {
            let parallel = masked(cmd_search(&src, 18, TargetChoice::X86, opts(jobs)).unwrap());
            assert_eq!(sequential, parallel, "jobs={jobs:?} diverged");
        }
    }

    #[test]
    fn persistent_cache_warm_starts_search() {
        let src = demo_source();
        let dir = std::env::temp_dir().join(format!("optinline-cli-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts =
            EvalOptions { show_stats: true, cache_dir: Some(dir.clone()), ..Default::default() };
        let cold = cmd_search(&src, 18, TargetChoice::X86, opts.clone()).unwrap();
        let warm = cmd_search(&src, 18, TargetChoice::X86, opts).unwrap();
        let optimal =
            |r: &str| r.lines().find(|l| l.starts_with("optimal size:")).map(str::to_owned);
        assert_eq!(optimal(&cold), optimal(&warm));
        assert!(cold.contains("persist:"), "{cold}");
        // The warm run answers every query from disk: zero compilations.
        let compiles = warm
            .lines()
            .find(|l| l.starts_with("compilations done:"))
            .and_then(|l| l.split_whitespace().nth(2).map(str::to_owned))
            .unwrap();
        assert_eq!(compiles, "0", "warm run must not compile: {warm}");
        // And the stats line reports the hits.
        let stats_line = warm.lines().find(|l| l.starts_with("evaluator:")).unwrap();
        assert!(stats_line.contains("persist:"), "{stats_line}");
        assert!(stats_line.contains("0 misses"), "{stats_line}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_persist_disables_the_cache() {
        let src = demo_source();
        let dir =
            std::env::temp_dir().join(format!("optinline-cli-nopersist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = EvalOptions {
            show_stats: true,
            cache_dir: Some(dir.clone()),
            no_persist: true,
            ..Default::default()
        };
        let report = cmd_search(&src, 18, TargetChoice::X86, opts).unwrap();
        assert!(!report.contains("persist:"), "{report}");
        assert!(!dir.exists(), "--no-persist must not create the cache dir");
    }

    #[test]
    fn autotune_reuses_the_search_cache() {
        let src = demo_source();
        let dir =
            std::env::temp_dir().join(format!("optinline-cli-tunecache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts =
            EvalOptions { show_stats: true, cache_dir: Some(dir.clone()), ..Default::default() };
        let first =
            cmd_autotune(&src, 2, InitChoice::Clean, TargetChoice::X86, opts.clone()).unwrap();
        let second = cmd_autotune(&src, 2, InitChoice::Clean, TargetChoice::X86, opts).unwrap();
        let tuned = |r: &str| r.lines().find(|l| l.contains("tuned best")).map(str::to_owned);
        assert_eq!(tuned(&first), tuned(&second));
        let compiles = second
            .lines()
            .find(|l| l.starts_with("compilations:"))
            .and_then(|l| l.split_whitespace().nth(1).map(str::to_owned))
            .unwrap();
        assert_eq!(compiles, "0", "warm autotune must not compile: {second}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_subcommand_reports_verifies_compacts_and_gcs() {
        let src = demo_source();
        let dir = std::env::temp_dir().join(format!("optinline-cli-admin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = EvalOptions { cache_dir: Some(dir.clone()), ..Default::default() };
        cmd_search(&src, 18, TargetChoice::X86, opts).unwrap();

        let stats = cmd_cache(CacheAction::Stats, &dir, None).unwrap();
        assert!(stats.contains("scopes:          1"), "{stats}");
        assert!(stats.contains("entries:"), "{stats}");

        let verify = cmd_cache(CacheAction::Verify, &dir, None).unwrap();
        assert!(verify.contains("malformed lines: 0"), "{verify}");
        assert!(verify.contains("unreadable logs: 0"), "{verify}");

        let compact = cmd_cache(CacheAction::Compact, &dir, None).unwrap();
        assert!(compact.contains("reclaimed:"), "{compact}");

        assert!(cmd_cache(CacheAction::Gc, &dir, None).is_err(), "gc without budget must fail");
        let gc = cmd_cache(CacheAction::Gc, &dir, Some(1)).unwrap();
        assert!(gc.contains("evicted scopes:  1"), "{gc}");
        // The budget is enforced: nothing but the (tiny) index remains.
        let post = cmd_cache(CacheAction::Stats, &dir, None).unwrap();
        assert!(post.contains("scopes:          0"), "{post}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_verify_fails_on_damaged_store() {
        let dir = std::env::temp_dir().join(format!("optinline-cli-damage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("ab")).unwrap();
        // A log whose header is garbage is unreadable damage.
        std::fs::write(dir.join("ab").join(format!("{:030x}.log", 7)), "not a store log\n")
            .unwrap();
        let err = cmd_cache(CacheAction::Verify, &dir, None).unwrap_err();
        assert!(err.to_string().contains("unreadable logs: 1"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn search_imports_legacy_flat_cache_files() {
        use optinline_core::{cache_meta, module_fingerprint};
        let src = demo_source();
        let dir = std::env::temp_dir().join(format!("optinline-cli-legacy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A pre-store flat v2 file with the module's true identity: one
        // absurd entry for the all-no-inline key, which the search will
        // then trust instead of compiling.
        let module = load_module(&src).unwrap();
        let fp = module_fingerprint(&module, "x86-like");
        let meta = cache_meta(&module, "x86-like");
        let sanitized = meta.replace(['\n', '\r'], " ");
        std::fs::write(
            dir.join(format!("{fp:032x}.sizes")),
            format!("optinline-cache v2\nmeta {sanitized}\n424242 -\n"),
        )
        .unwrap();
        let opts =
            EvalOptions { show_stats: true, cache_dir: Some(dir.clone()), ..Default::default() };
        let report = cmd_search(&src, 18, TargetChoice::X86, opts).unwrap();
        assert!(
            report.contains("no inlining:        424242 B"),
            "legacy entry must be served: {report}"
        );
        assert!(report.contains("imported"), "{report}");
        // The flat file is retired into the sharded layout.
        assert!(!dir.join(format!("{fp:032x}.sizes")).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn search_budget_gc_keeps_the_directory_within_budget() {
        let src = demo_source();
        let other = cmd_gen(12, 5, 2).unwrap();
        let dir = std::env::temp_dir().join(format!("optinline-cli-budget-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Populate two scopes, then rerun with a small budget: the store
        // may evict the cold scope but must keep the one the run just used
        // (it holds a live handle during GC and is newest-recency anyway).
        let opts = |budget| EvalOptions {
            cache_dir: Some(dir.clone()),
            cache_budget_bytes: budget,
            ..Default::default()
        };
        cmd_search(&other, 18, TargetChoice::X86, opts(None)).unwrap();
        cmd_search(&src, 18, TargetChoice::X86, opts(None)).unwrap();
        cmd_search(&src, 18, TargetChoice::X86, opts(Some(1))).unwrap();
        let stats = cmd_cache(CacheAction::Stats, &dir, None).unwrap();
        assert!(stats.contains("scopes:          1"), "cold scope must be evicted: {stats}");
        // The surviving scope still warm-starts.
        let warm = cmd_search(&src, 18, TargetChoice::X86, opts(None)).unwrap();
        let compiles = warm
            .lines()
            .find(|l| l.starts_with("compilations done:"))
            .and_then(|l| l.split_whitespace().nth(2).map(str::to_owned))
            .unwrap();
        assert_eq!(compiles, "0", "survivor must stay warm: {warm}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn speed_search_reports_cycles_and_is_deterministic() {
        let src = demo_source();
        let opts = |jobs| EvalOptions { jobs, objective: Objective::Speed, ..Default::default() };
        let sequential = cmd_search(&src, 18, TargetChoice::X86, opts(Some(1))).unwrap();
        assert!(sequential.contains("objective:          speed"), "{sequential}");
        assert!(sequential.contains("optimal cycles:"), "{sequential}");
        assert!(sequential.contains("optimal size:"), "{sequential}");
        // The optimum dominates both baselines in cycles.
        for line in sequential.lines().filter(|l| l.contains('%')) {
            let pct: f64 = line
                .split('(')
                .nth(1)
                .and_then(|s| s.split('%').next())
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(100.0);
            assert!(pct >= 100.0 - 1e-9, "baseline beat the speed optimum: {line}");
        }
        // Byte-identical across executor shapes, like the size search
        // ("compilations done" may differ: concurrent lanes can race to
        // compile the same memo key — duplicated work, never a different
        // answer).
        let masked = |report: String| -> String {
            report
                .lines()
                .filter(|l| !l.starts_with("compilations done:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        for jobs in [None, Some(2), Some(4)] {
            let parallel = cmd_search(&src, 18, TargetChoice::X86, opts(jobs)).unwrap();
            assert_eq!(masked(sequential.clone()), masked(parallel), "jobs={jobs:?} diverged");
        }
    }

    #[test]
    fn pareto_search_builds_a_deterministic_front() {
        let src = demo_source();
        let opts = || EvalOptions { objective: Objective::Pareto, ..Default::default() };
        let first = cmd_search(&src, 18, TargetChoice::X86, opts()).unwrap();
        assert!(first.contains("objective:          pareto"), "{first}");
        assert!(first.contains("size-optimal:"), "{first}");
        assert!(first.contains("speed-optimal:"), "{first}");
        assert!(first.contains("pareto front:"), "{first}");
        assert!(first.contains(" B, "), "points carry both metrics: {first}");
        let again = cmd_search(&src, 18, TargetChoice::X86, opts()).unwrap();
        assert_eq!(first, again, "pareto front must be run-to-run deterministic");
        // The size-optimal point matches the plain size search's optimum.
        let size_report = cmd_search(&src, 18, TargetChoice::X86, EvalOptions::default()).unwrap();
        let optimal: u64 = size_report
            .lines()
            .find(|l| l.starts_with("optimal size:"))
            .and_then(|l| l.split_whitespace().nth(2))
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(
            first.contains(&format!("size-optimal:       {optimal} B")),
            "front must contain the size optimum ({optimal} B): {first}"
        );
    }

    #[test]
    fn pareto_autotune_prunes_dominated_configs() {
        let src = demo_source();
        let opts = || EvalOptions { objective: Objective::Pareto, ..Default::default() };
        let first = cmd_autotune(&src, 3, InitChoice::Both, TargetChoice::X86, opts()).unwrap();
        assert!(first.contains("objective:       pareto"), "{first}");
        assert!(first.contains("pareto front:"), "{first}");
        assert!(first.contains("evaluations:"), "{first}");
        let points = first.lines().filter(|l| l.starts_with("  - ")).count();
        assert!(points >= 1, "front must be non-empty: {first}");
        let again = cmd_autotune(&src, 3, InitChoice::Both, TargetChoice::X86, opts()).unwrap();
        assert_eq!(first, again, "pareto tuning must be deterministic");
        // No point on the front dominates another: sizes strictly
        // decrease only if cycles increase along the sorted front.
        let metrics: Vec<(u64, u64)> = first
            .lines()
            .filter(|l| l.starts_with("  - "))
            .filter_map(|l| {
                let rest = l.strip_prefix("  - ")?;
                let size: u64 = rest.split(" B").next()?.trim().parse().ok()?;
                let cycles: u64 =
                    rest.split(", ").nth(1)?.split(' ').next()?.trim().parse().ok()?;
                Some((size, cycles))
            })
            .collect();
        for pair in metrics.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            assert!(a.0 < b.0 || (a.0 == b.0 && a.1 <= b.1), "front not sorted: {metrics:?}");
            assert!(a.1 > b.1 || (a.0 == b.0), "dominated point survived: {metrics:?}");
        }
    }

    #[test]
    fn speed_autotune_minimizes_cycles() {
        let src = demo_source();
        let opts = EvalOptions { objective: Objective::Speed, ..Default::default() };
        let report = cmd_autotune(&src, 3, InitChoice::Both, TargetChoice::X86, opts).unwrap();
        assert!(report.contains("objective:       speed"), "{report}");
        assert!(report.contains("tuned best:"), "{report}");
        assert!(report.contains("cycles"), "{report}");
        let pct: f64 = report
            .lines()
            .find(|l| l.contains("tuned best"))
            .and_then(|l| l.split('(').nth(1))
            .and_then(|s| s.split('%').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("percentage present");
        assert!(pct <= 100.0, "tuning must not lose to the baseline: {report}");
    }

    #[test]
    fn objectives_share_a_store_without_aliasing() {
        let src = demo_source();
        let dir =
            std::env::temp_dir().join(format!("optinline-cli-objcache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = |objective| EvalOptions {
            cache_dir: Some(dir.clone()),
            objective,
            ..Default::default()
        };
        let size_cold = cmd_search(&src, 18, TargetChoice::X86, opts(Objective::Size)).unwrap();
        let speed_cold = cmd_search(&src, 18, TargetChoice::X86, opts(Objective::Speed)).unwrap();
        // Two scopes now exist: the historical size scope and the cycles
        // scope — speed entries never alias size entries.
        let stats = cmd_cache(CacheAction::Stats, &dir, None).unwrap();
        assert!(stats.contains("scopes:          2"), "{stats}");
        // Both objectives warm-start from their own scope, to identical
        // reports with zero compilations.
        let compiles = |r: &str| {
            r.lines()
                .find(|l| l.starts_with("compilations done:"))
                .and_then(|l| l.split_whitespace().nth(2).map(str::to_owned))
                .unwrap()
        };
        let size_warm = cmd_search(&src, 18, TargetChoice::X86, opts(Objective::Size)).unwrap();
        assert_eq!(compiles(&size_warm), "0", "warm size run must not compile: {size_warm}");
        let masked = |r: &str| {
            r.lines()
                .filter(|l| !l.starts_with("compilations done:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(masked(&size_cold), masked(&size_warm));
        let speed_warm = cmd_search(&src, 18, TargetChoice::X86, opts(Objective::Speed)).unwrap();
        assert_eq!(compiles(&speed_warm), "0", "warm speed run must not compile: {speed_warm}");
        assert_eq!(masked(&speed_cold), masked(&speed_warm));
        // A pareto run reuses the speed scope (one shared cycles scope),
        // not a third one.
        cmd_search(&src, 18, TargetChoice::X86, opts(Objective::Pareto)).unwrap();
        let stats = cmd_cache(CacheAction::Stats, &dir, None).unwrap();
        assert!(stats.contains("scopes:          2"), "pareto must share the speed scope: {stats}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_verify_reports_the_format_mix_per_scope() {
        let src = demo_source();
        let dir = std::env::temp_dir().join(format!("optinline-cli-mix-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = |objective| EvalOptions {
            cache_dir: Some(dir.clone()),
            objective,
            ..Default::default()
        };
        cmd_search(&src, 18, TargetChoice::X86, opts(Objective::Size)).unwrap();
        cmd_search(&src, 18, TargetChoice::X86, opts(Objective::Speed)).unwrap();
        let verify = cmd_cache(CacheAction::Verify, &dir, None).unwrap();
        assert!(verify.contains("size-only lines:"), "{verify}");
        assert!(verify.contains("measured lines:"), "{verify}");
        let count = |label: &str| -> u64 {
            verify
                .lines()
                .find(|l| l.starts_with(label))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|v| v.parse().ok())
                .unwrap()
        };
        assert!(count("size-only lines:") > 0, "size scope writes bare sizes: {verify}");
        assert!(count("measured lines:") > 0, "speed scope writes cycles: {verify}");
        let mix_lines = verify.lines().filter(|l| l.trim_start().starts_with("scope ")).count();
        assert_eq!(mix_lines, 2, "one mix line per scope: {verify}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn optimize_reports_cycles_under_speed_objective() {
        let src = demo_source();
        let (plain, _) =
            cmd_optimize(&src, StrategyChoice::Heuristic, TargetChoice::X86, Default::default())
                .unwrap();
        assert!(!plain.contains("cycles:"), "size report stays unchanged: {plain}");
        let (speed, _, m) = cmd_optimize_measured(
            &src,
            StrategyChoice::Heuristic,
            TargetChoice::X86,
            OptimizeOptions { objective: Objective::Speed, ..Default::default() },
        )
        .unwrap();
        assert!(speed.contains("objective:       speed"), "{speed}");
        assert!(speed.contains("cycles:"), "{speed}");
        assert!(m.cycles.is_some(), "generated modules have a public main: {m:?}");
        // The cycles lines are appended: everything else matches.
        let strip = |r: &str| {
            r.lines()
                .filter(|l| !l.starts_with("objective:") && !l.starts_with("cycles:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&plain), strip(&speed));
    }

    #[test]
    fn search_renders_pipeline_table_under_pass_stats() {
        let src = demo_source();
        let report = cmd_search(
            &src,
            18,
            TargetChoice::X86,
            EvalOptions { show_pass_stats: true, ..Default::default() },
        )
        .unwrap();
        assert!(report.contains("pass stats:"), "{report}");
        assert!(report.contains("analysis cache:"), "{report}");
    }
}
