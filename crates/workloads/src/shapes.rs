//! Parametric call-graph shape builders: the canonical topologies the
//! paper's search-space analysis cares about, sized on demand.
//!
//! Where [`samples`](crate::samples) hand-crafts the paper's specific
//! figures, these builders generate *families* — a 50-edge bridge chain, a
//! 12-spoke star — for scaling studies, benches, and tests. All bodies are
//! small deterministic arithmetic; every function takes one parameter and
//! returns one value; node 0's root is public.

use optinline_ir::{assert_verified, BinOp, FuncBuilder, FuncId, Linkage, Module};

fn body(b: &mut FuncBuilder<'_>, seed: i64, ops: usize) -> optinline_ir::ValueId {
    let p = b.param(0);
    let mut acc = p;
    for k in 0..ops {
        let c = b.iconst(seed * 7 + k as i64 + 1);
        acc = b.bin([BinOp::Add, BinOp::Xor, BinOp::Sub][k % 3], acc, c);
    }
    acc
}

/// A chain `root → f1 → f2 → … → f_n`: every edge is a bridge, the shape
/// §3.2's recursive partitioning splits down the middle.
pub fn chain(n_edges: usize) -> Module {
    assert!(n_edges >= 1, "a chain needs at least one edge");
    let mut m = Module::new(format!("chain{n_edges}"));
    let mut prev: Option<FuncId> = None;
    for i in (0..=n_edges).rev() {
        let linkage = if i == 0 { Linkage::Public } else { Linkage::Internal };
        let f = m.declare_function(format!("f{i}"), 1, linkage);
        let mut b = FuncBuilder::new(&mut m, f);
        let acc = body(&mut b, i as i64, 2 + i % 3);
        match prev {
            Some(callee) => {
                let v = b.call(callee, &[acc]).unwrap();
                b.ret(Some(v));
            }
            None => b.ret(Some(acc)),
        }
        prev = Some(f);
    }
    assert_verified(&m);
    m
}

/// A star: `k` public callers share one internal callee — the coupled-DCE
/// landscape of Figure 11, parametric.
pub fn star(k_callers: usize, callee_ops: usize) -> Module {
    assert!(k_callers >= 1, "a star needs at least one caller");
    let mut m = Module::new(format!("star{k_callers}"));
    let hub = m.declare_function("hub", 1, Linkage::Internal);
    {
        let mut b = FuncBuilder::new(&mut m, hub);
        let acc = body(&mut b, 3, callee_ops);
        b.ret(Some(acc));
    }
    for i in 0..k_callers {
        let f = m.declare_function(format!("caller{i}"), 1, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let acc = body(&mut b, i as i64, 1 + i % 2);
        let v = b.call(hub, &[acc]).unwrap();
        b.ret(Some(v));
    }
    assert_verified(&m);
    m
}

/// A binary tree of depth `d`: the root calls two children, each child two
/// grandchildren, … — `2^d - 1` internal functions, `2^(d+1) - 2` edges,
/// every edge a bridge. The shape where recursive partitioning shines.
pub fn binary_tree(depth: usize) -> Module {
    assert!((1..=6).contains(&depth), "depth must be 1..=6 (edge count doubles per level)");
    let mut m = Module::new(format!("tree{depth}"));
    // Level-order declaration: node i has children 2i+1 and 2i+2.
    let total = (1usize << depth) - 1;
    let ids: Vec<FuncId> = (0..total)
        .map(|i| {
            let linkage = if i == 0 { Linkage::Public } else { Linkage::Internal };
            m.declare_function(format!("n{i}"), 1, linkage)
        })
        .collect();
    for i in (0..total).rev() {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut b = FuncBuilder::new(&mut m, ids[i]);
        let acc = body(&mut b, i as i64, 2);
        if l < total {
            let vl = b.call(ids[l], &[acc]).unwrap();
            let vr = b.call(ids[r], &[acc]).unwrap();
            let sum = b.bin(BinOp::Add, vl, vr);
            b.ret(Some(sum));
        } else {
            b.ret(Some(acc));
        }
    }
    assert_verified(&m);
    m
}

/// `k` disconnected single-edge components — the §3.1 decomposition in its
/// purest form: the naive space is `2^k`, the partitioned one `2k + 1`.
pub fn components(k: usize) -> Module {
    assert!(k >= 1, "need at least one component");
    let mut m = Module::new(format!("components{k}"));
    for i in 0..k {
        let leaf = m.declare_function(format!("leaf{i}"), 1, Linkage::Internal);
        {
            let mut b = FuncBuilder::new(&mut m, leaf);
            let acc = body(&mut b, i as i64, 2);
            b.ret(Some(acc));
        }
        let root = m.declare_function(format!("root{i}"), 1, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, root);
        let p = b.param(0);
        let v = b.call(leaf, &[p]).unwrap();
        b.ret(Some(v));
    }
    assert_verified(&m);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinline_callgraph::{bridge_groups, component_count, InlineGraph, PartitionStrategy};
    use optinline_core::tree::{space_size, try_build_inlining_tree};

    #[test]
    fn chain_edges_are_all_bridges() {
        for n in [1usize, 3, 8, 20] {
            let m = chain(n);
            assert_eq!(m.inlinable_sites().len(), n);
            let g = InlineGraph::from_module(&m);
            assert_eq!(bridge_groups(&g).len(), n);
        }
    }

    #[test]
    fn star_has_k_sites_one_component() {
        let m = star(6, 10);
        assert_eq!(m.inlinable_sites().len(), 6);
        let g = InlineGraph::from_module(&m);
        assert_eq!(component_count(&g), 1);
    }

    #[test]
    fn tree_space_collapses_dramatically() {
        // Depth 4: 15 nodes, 14 edges → naive 2^14 = 16384; the partitioned
        // space is orders of magnitude smaller on a perfect bridge tree.
        let m = binary_tree(4);
        let n = m.inlinable_sites().len();
        assert_eq!(n, 14);
        let g = InlineGraph::from_module(&m);
        let tree = try_build_inlining_tree(&g, PartitionStrategy::Paper, 1 << 14)
            .expect("tree shape must stay within the naive bound");
        let space = space_size(&tree);
        assert!(space < (1u128 << n) / 4, "space {space} vs naive {}", 1u128 << n);
    }

    #[test]
    fn components_space_is_linear() {
        // k single-edge components: 2 evaluations each + 1 combine.
        let m = components(10);
        let g = InlineGraph::from_module(&m);
        let tree = try_build_inlining_tree(&g, PartitionStrategy::Paper, 1 << 12).unwrap();
        assert_eq!(space_size(&tree), 2 * 10 + 1);
    }

    #[test]
    fn shapes_interpret_and_search_soundly() {
        use optinline_codegen::X86Like;
        use optinline_core::{exhaustive_search, CompilerEvaluator};
        for m in [chain(4), star(3, 6), binary_tree(3), components(3)] {
            let name = m.name.clone();
            let ev = CompilerEvaluator::new(m, Box::new(X86Like));
            let sites = ev.sites().clone();
            let naive = exhaustive_search(&ev, &sites);
            let tree = optinline_core::tree::optimal_configuration(&ev, PartitionStrategy::Paper);
            assert_eq!(tree.size, naive.size, "{name}");
        }
    }
}
