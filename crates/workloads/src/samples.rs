//! Hand-crafted modules realizing the paper's figures and case studies.
//!
//! Each builder returns a verified module whose inlining landscape has the
//! property the corresponding figure illustrates — e.g. [`dce_star`] only
//! pays off when *all* call sites of the shared callee are inlined at once
//! (Figure 11), which is exactly the case a one-edge-at-a-time autotuner
//! round cannot discover from a clean slate.

use optinline_ir::{assert_verified, BinOp, FuncBuilder, FuncId, Linkage, Module};

/// Listing 1 of the paper: `bar(a) = a + a` called inside `foo`'s loop.
/// Inlining the single call shrinks the binary (the call overhead and
/// `bar`'s body both disappear).
pub fn listing1() -> Module {
    let mut m = Module::new("listing1");
    let bar = m.declare_function("bar", 1, Linkage::Internal);
    let caller = m.declare_function("main", 1, Linkage::Public);
    {
        let mut b = FuncBuilder::new(&mut m, bar);
        let a = b.param(0);
        let r = b.bin(BinOp::Add, a, a);
        b.ret(Some(r));
    }
    {
        let mut b = FuncBuilder::new(&mut m, caller);
        let n = b.param(0);
        let zero = b.iconst(0);
        let (hdr, hp) = b.new_block(1);
        let (body, _) = b.new_block(0);
        let (found, _) = b.new_block(0);
        let (next, _) = b.new_block(0);
        let (exit, _) = b.new_block(0);
        b.jump(hdr, &[zero]);
        let i = hp[0];
        let c = b.bin(BinOp::Lt, i, n);
        b.branch(c, body, &[], exit, &[]);
        b.switch_to(body);
        let v = b.call(bar, &[i]).unwrap();
        let eq = b.bin(BinOp::Eq, v, i);
        b.branch(eq, found, &[], next, &[]);
        b.switch_to(found);
        let z = b.iconst(0);
        b.ret(Some(z));
        b.switch_to(next);
        let one = b.iconst(1);
        let i2 = b.bin(BinOp::Add, i, one);
        b.jump(hdr, &[i2]);
        b.switch_to(exit);
        let one2 = b.iconst(1);
        b.ret(Some(one2));
    }
    assert_verified(&m);
    m
}

fn medium_body(b: &mut FuncBuilder<'_>, seed: i64, ops: usize) -> optinline_ir::ValueId {
    let p = b.param(0);
    let mut acc = p;
    for k in 0..ops {
        let c = b.iconst(seed + k as i64 * 7 + 1);
        let op = [BinOp::Add, BinOp::Xor, BinOp::Sub][k % 3];
        acc = b.bin(op, acc, c);
    }
    acc
}

/// Figure 2's call graph (A→B, B→C, D→B) with small arithmetic bodies.
/// `B` has two callers, so inlining `A→B` clones it — the coupled-copy
/// mechanics of §2.
pub fn fig2() -> Module {
    let mut m = Module::new("fig2");
    let c = m.declare_function("C", 1, Linkage::Internal);
    let b_ = m.declare_function("B", 1, Linkage::Internal);
    let a = m.declare_function("A", 1, Linkage::Public);
    let d = m.declare_function("D", 1, Linkage::Public);
    {
        let mut b = FuncBuilder::new(&mut m, c);
        let r = medium_body(&mut b, 3, 4);
        b.ret(Some(r));
    }
    {
        let mut b = FuncBuilder::new(&mut m, b_);
        let acc = medium_body(&mut b, 5, 3);
        let v = b.call(c, &[acc]).unwrap();
        b.ret(Some(v));
    }
    for (f, seed) in [(a, 11), (d, 13)] {
        let mut b = FuncBuilder::new(&mut m, f);
        let acc = medium_body(&mut b, seed, 2);
        let v = b.call(b_, &[acc]).unwrap();
        b.ret(Some(v));
    }
    assert_verified(&m);
    m
}

/// Figure 4's two-component graph: `F→G→K` and `H→L`.
pub fn fig4() -> Module {
    let mut m = Module::new("fig4");
    let k = m.declare_function("K", 1, Linkage::Internal);
    let g = m.declare_function("G", 1, Linkage::Internal);
    let f = m.declare_function("F", 1, Linkage::Public);
    let l = m.declare_function("L", 1, Linkage::Internal);
    let h = m.declare_function("H", 1, Linkage::Public);
    for (id, seed, callee) in
        [(k, 1, None), (g, 2, Some(k)), (f, 3, Some(g)), (l, 4, None), (h, 5, Some(l))]
    {
        let mut b = FuncBuilder::new(&mut m, id);
        let acc = medium_body(&mut b, seed, 3);
        match callee {
            Some(cal) => {
                let v = b.call(cal, &[acc]).unwrap();
                b.ret(Some(v));
            }
            None => b.ret(Some(acc)),
        }
    }
    assert_verified(&m);
    m
}

/// Figure 5's bridge chain: `F→G→K→L→H→I`.
pub fn fig5() -> Module {
    let mut m = Module::new("fig5");
    let names = ["I", "H", "L", "K", "G", "F"];
    let mut prev: Option<FuncId> = None;
    let mut last = None;
    for (i, name) in names.iter().enumerate() {
        let linkage = if i + 1 == names.len() { Linkage::Public } else { Linkage::Internal };
        let id = m.declare_function(*name, 1, linkage);
        let mut b = FuncBuilder::new(&mut m, id);
        let acc = medium_body(&mut b, i as i64 * 3 + 1, 2 + i % 3);
        match prev {
            Some(p) => {
                let v = b.call(p, &[acc]).unwrap();
                b.ret(Some(v));
            }
            None => b.ret(Some(acc)),
        }
        prev = Some(id);
        last = Some(id);
    }
    let _ = last;
    assert_verified(&m);
    m
}

/// Figure 11 (parest `dof_objects.c`): a shared internal callee whose
/// inlining only pays off *collectively*.
///
/// The callee is big enough that duplicating it at any single call site
/// costs more than the removed call saves — but each caller passes a
/// constant that folds the inlined body to almost nothing, and once every
/// call site is inlined the callee is deleted outright. A local,
/// one-flip-at-a-time clean-slate autotuning round keeps none of the flips;
/// the baseline heuristic (which credits constant arguments and deletion)
/// inlines them all and wins.
pub fn dce_star(callers: usize) -> Module {
    assert!(callers >= 2, "a star needs at least two callers");
    let mut m = Module::new("dce_star");
    let g = m.add_global("table", 17);
    let callee = m.declare_function("shared_helper", 1, Linkage::Internal);
    {
        // if p == 0 { medium, unfoldable (loads a global) } else { huge }.
        // Callers pass 0, so every inlined copy keeps exactly the medium
        // arm — bigger than the call it replaces, far smaller than the
        // whole callee that dies once every site is inlined.
        let mut b = FuncBuilder::new(&mut m, callee);
        let p = b.param(0);
        let zero = b.iconst(0);
        let is_zero = b.bin(BinOp::Eq, p, zero);
        let (cheap, _) = b.new_block(0);
        let (heavy, _) = b.new_block(0);
        b.branch(is_zero, cheap, &[], heavy, &[]);
        b.switch_to(cheap);
        let x = b.load(g);
        let mut acc = x;
        for k in 0..4 {
            let c = b.iconst(k * 7 + 1);
            acc = b.bin([BinOp::Add, BinOp::Xor][k as usize % 2], acc, c);
        }
        b.ret(Some(acc));
        b.switch_to(heavy);
        let mut acc = p;
        for k in 0..50 {
            let c = b.iconst(k * 5 + 3);
            acc = b.bin([BinOp::Add, BinOp::Mul, BinOp::Xor][k as usize % 3], acc, c);
        }
        b.ret(Some(acc));
    }
    for i in 0..callers {
        let f = m.declare_function(format!("caller{i}"), 1, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let p = b.param(0);
        let zero = b.iconst(0);
        let v = b.call(callee, &[zero]).unwrap();
        let r = b.bin(BinOp::Add, v, p);
        b.ret(Some(r));
    }
    assert_verified(&m);
    m
}

/// Figure 13 (imagick `decorate.c`): a graph where the *clean slate* wins
/// and heuristic-initialized tuning is stuck in a local minimum.
///
/// Many medium-size callees each look individually attractive to the eager
/// baseline (constant args, call savings), but inlining them all bloats the
/// caller past the spill cliff. From the all-inlined start, un-inlining any
/// single callee doesn't reclaim enough to beat the base; from the clean
/// slate, keeping everything out is already near-optimal.
pub fn outline_trap(callees: usize) -> Module {
    assert!(callees >= 3, "the trap needs several callees");
    let mut m = Module::new("outline_trap");
    let mut ids = Vec::new();
    for i in 0..callees {
        let f = m.declare_function(format!("piece{i}"), 2, Linkage::Internal);
        let mut b = FuncBuilder::new(&mut m, f);
        let p = b.param(0);
        let q = b.param(1);
        let mut acc = b.bin(BinOp::Add, p, q);
        for k in 0..7 {
            let c = b.iconst((i as i64 + 1) * 9 + k);
            acc = b.bin([BinOp::Xor, BinOp::Add, BinOp::Sub][(k as usize + i) % 3], acc, c);
        }
        b.ret(Some(acc));
        ids.push(f);
    }
    let main = m.declare_function("main", 1, Linkage::Public);
    {
        let mut b = FuncBuilder::new(&mut m, main);
        let p = b.param(0);
        let mut acc = p;
        // Every piece is called twice so it never gets the deletion bonus
        // path of dying after one inline, and duplication hurts twice.
        for &id in &ids {
            let v1 = b.call(id, &[acc, p]).unwrap();
            let v2 = b.call(id, &[p, v1]).unwrap();
            acc = b.bin(BinOp::Add, v1, v2);
        }
        b.ret(Some(acc));
    }
    assert_verified(&m);
    m
}

/// Figure 14 (leela `FullBoard.cpp`): the opposite case — the
/// heuristic-initialized start wins because the profitable configuration
/// needs a *pair* of inlinings (wrapper + its callee) that single local
/// flips from the clean slate cannot discover together.
pub fn dce_chain() -> Module {
    let mut m = Module::new("dce_chain");
    let inner = m.declare_function("inner", 1, Linkage::Internal);
    let wrapper = m.declare_function("wrapper", 1, Linkage::Internal);
    let main = m.declare_function("main", 0, Linkage::Public);
    // Second callers keep inner and wrapper alive under any single flip,
    // so no individual flip pays from the clean slate — only the pair
    // (which the eager baseline takes) unlocks the fold in `main`.
    let keeper = m.declare_function("keeper", 1, Linkage::Public);
    let keeper2 = m.declare_function("keeper2", 1, Linkage::Public);
    {
        // inner: branch on the argument; with the constant 7 that flows in
        // through wrapper, everything folds.
        let mut b = FuncBuilder::new(&mut m, inner);
        let p = b.param(0);
        let seven = b.iconst(7);
        let is7 = b.bin(BinOp::Eq, p, seven);
        let (fast, _) = b.new_block(0);
        let (slow, _) = b.new_block(0);
        b.branch(is7, fast, &[], slow, &[]);
        b.switch_to(fast);
        let one = b.iconst(1);
        b.ret(Some(one));
        b.switch_to(slow);
        let mut acc = p;
        for k in 0..18 {
            let c = b.iconst(k * 11 + 2);
            acc = b.bin([BinOp::Mul, BinOp::Xor, BinOp::Add][k as usize % 3], acc, c);
        }
        b.ret(Some(acc));
    }
    {
        // wrapper: a few ops, then inner(7).
        let mut b = FuncBuilder::new(&mut m, wrapper);
        let p = b.param(0);
        let c9 = b.iconst(9);
        let t1 = b.bin(BinOp::Xor, p, c9);
        let c4 = b.iconst(4);
        let t2 = b.bin(BinOp::Add, t1, c4);
        let seven = b.iconst(7);
        let v = b.call(inner, &[seven]).unwrap();
        let r = b.bin(BinOp::Add, v, t2);
        b.ret(Some(r));
    }
    {
        let mut b = FuncBuilder::new(&mut m, main);
        let x = b.iconst(3);
        let v = b.call(wrapper, &[x]).unwrap();
        b.ret(Some(v));
    }
    {
        let mut b = FuncBuilder::new(&mut m, keeper);
        let p = b.param(0);
        let v = b.call(inner, &[p]).unwrap();
        b.ret(Some(v));
    }
    {
        let mut b = FuncBuilder::new(&mut m, keeper2);
        let p = b.param(0);
        let v = b.call(wrapper, &[p]).unwrap();
        b.ret(Some(v));
    }
    assert_verified(&m);
    m
}

/// Table 4 (`XalanBitmap.cpp`): a module with enough interacting call
/// sites that successive autotuning rounds keep finding new flips, with
/// non-monotone sizes along the way.
pub fn xalan_bitmap() -> Module {
    let mut m = Module::new("xalan_bitmap");
    let g = m.add_global("state", 0);
    // Three layers engineered so that the profitable flips only surface one
    // round at a time:
    //   round 1 — combo→leaf: each leaf has a single caller passing a
    //     constant, so inlining folds the copy to a constant AND deletes
    //     the leaf;
    //   round 2 — api→combo: now each combo body is just `ret const`, so
    //     inlining it constant-folds the api's whole dependent chain (in
    //     round 1 the un-collapsed combo was too big to move).
    let mut leaves = Vec::new();
    for i in 0..4i64 {
        let f = m.declare_function(format!("leaf{i}"), 1, Linkage::Internal);
        let mut b = FuncBuilder::new(&mut m, f);
        let p = b.param(0);
        let mut acc = p;
        for k in 0..(8 + i) {
            let c = b.iconst(k * 3 + i + 1);
            acc = b.bin([BinOp::Add, BinOp::Xor, BinOp::Sub][(k as usize) % 3], acc, c);
        }
        b.ret(Some(acc));
        leaves.push(f);
    }
    let mut combos = Vec::new();
    for (i, &leaf) in leaves.iter().enumerate() {
        let f = m.declare_function(format!("combo{i}"), 1, Linkage::Internal);
        let mut b = FuncBuilder::new(&mut m, f);
        // The parameter is ignored: once the leaf call folds, the whole
        // combo collapses to `ret const`.
        let zero = b.iconst(0);
        let a = b.call(leaf, &[zero]).unwrap();
        let c7 = b.iconst(7 + i as i64);
        let t = b.bin(BinOp::Xor, a, c7);
        let c3 = b.iconst(3);
        let r = b.bin(BinOp::Add, t, c3);
        b.ret(Some(r));
        combos.push(f);
    }
    for (i, &combo) in combos.iter().enumerate() {
        // Two apis share each combo, so inlining one site never deletes the
        // combo on its own — only the fold matters, and it only pays once
        // the combo has collapsed.
        let f = m.declare_function(format!("api{i}"), 1, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let p = b.param(0);
        let v = b.call(combo, &[p]).unwrap();
        let w = b.call(combos[(i + 1) % combos.len()], &[p]).unwrap();
        // A chain that folds entirely once v/w become constants.
        let mut acc = b.bin(BinOp::Add, v, w);
        for k in 0..6 {
            let c = b.iconst(k * 5 + 2);
            acc = b.bin([BinOp::Xor, BinOp::Add][(k as usize) % 2], acc, c);
        }
        b.store(g, acc);
        b.ret(Some(acc));
    }
    let main = m.declare_function("main", 0, Linkage::Public);
    {
        let api0 = m.func_by_name("api0").expect("api0 exists");
        let mut b = FuncBuilder::new(&mut m, main);
        let x = b.iconst(5);
        let v = b.call(api0, &[x]).unwrap();
        b.ret(Some(v));
    }
    assert_verified(&m);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinline_callgraph::Decision;
    use optinline_codegen::X86Like;
    use optinline_core::{autotune::Autotuner, CompilerEvaluator, InliningConfiguration};
    use optinline_heuristics::CostModelInliner;
    use optinline_ir::interp::Interp;

    #[test]
    fn listing1_runs_and_inlining_shrinks_it() {
        let m = listing1();
        let main = m.func_by_name("main").unwrap();
        let out = Interp::new(&m).run(main, &[5]).unwrap();
        assert_eq!(out.ret, Some(0)); // bar(0) == 0 in the first iteration
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let site = *ev.sites().iter().next().unwrap();
        let clean = ev.size_of(&InliningConfiguration::clean_slate());
        let inl = ev.size_of(&InliningConfiguration::clean_slate().with(site, Decision::Inline));
        assert!(inl < clean);
    }

    use optinline_core::Evaluator;

    #[test]
    fn fig_modules_have_the_documented_graph_shapes() {
        assert_eq!(fig2().inlinable_sites().len(), 3);
        assert_eq!(fig4().inlinable_sites().len(), 3);
        assert_eq!(fig5().inlinable_sites().len(), 5);
        let g5 = optinline_callgraph::InlineGraph::from_module(&fig5());
        assert_eq!(optinline_callgraph::bridge_groups(&g5).len(), 5);
        let g4 = optinline_callgraph::InlineGraph::from_module(&fig4());
        assert!(optinline_callgraph::component_count(&g4) >= 2);
    }

    #[test]
    fn dce_star_needs_collective_inlining() {
        let m = dce_star(5);
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let sites = ev.sites().clone();
        let clean = ev.size_of(&InliningConfiguration::clean_slate());
        // Any single inline grows the binary…
        for &s in &sites {
            let one = InliningConfiguration::clean_slate().with(s, Decision::Inline);
            assert!(ev.size_of(&one) > clean, "single inline of {s} should bloat");
        }
        // …but inlining all of them beats the clean slate.
        let all: InliningConfiguration = sites.iter().map(|&s| (s, Decision::Inline)).collect();
        assert!(ev.size_of(&all) < clean, "collective inlining should win");
        // Hence one clean-slate autotuning round keeps nothing.
        let tuner = Autotuner::new(&ev, sites.clone());
        let round = tuner.clean_slate(1);
        assert_eq!(round.rounds[0].flips, 0);
        // While the baseline heuristic finds the collective win.
        let heur = CostModelInliner::default().decide(ev.module(), &X86Like);
        let heur_cfg = InliningConfiguration::from_decisions(heur);
        assert!(ev.size_of(&heur_cfg) < clean);
    }

    #[test]
    fn dce_chain_favors_heuristic_initialization() {
        let m = dce_chain();
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let sites = ev.sites().clone();
        let tuner = Autotuner::new(&ev, sites.clone());
        let clean = tuner.clean_slate(1);
        let heur = CostModelInliner::default().decide(ev.module(), &X86Like);
        let heur_out = tuner.run(InliningConfiguration::from_decisions(heur), 1);
        assert!(
            heur_out.best().size <= clean.best().size,
            "heuristic init {} should beat clean slate {}",
            heur_out.best().size,
            clean.best().size
        );
    }

    #[test]
    fn outline_trap_favors_clean_slate() {
        let m = outline_trap(6);
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let sites = ev.sites().clone();
        let tuner = Autotuner::new(&ev, sites.clone());
        let clean = tuner.clean_slate(1);
        let heur = CostModelInliner::default().decide(ev.module(), &X86Like);
        let heur_out = tuner.run(InliningConfiguration::from_decisions(heur), 1);
        assert!(
            clean.best().size <= heur_out.best().size,
            "clean slate {} should beat heuristic init {}",
            clean.best().size,
            heur_out.best().size
        );
    }

    #[test]
    fn xalan_bitmap_improves_over_rounds() {
        let m = xalan_bitmap();
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let sites = ev.sites().clone();
        let tuner = Autotuner::new(&ev, sites);
        let out = tuner.clean_slate(4);
        assert!(out.rounds.len() >= 2, "expected multiple productive rounds");
        assert!(out.best().size < out.rounds[0].base_size);
    }

    #[test]
    fn all_samples_verify_and_run() {
        for m in [
            listing1(),
            fig2(),
            fig4(),
            fig5(),
            dce_star(4),
            outline_trap(4),
            dce_chain(),
            xalan_bitmap(),
        ] {
            optinline_ir::verify_module(&m).unwrap();
        }
        let out = optinline_ir::interp::run_main(&dce_chain()).unwrap();
        assert!(out.ret.is_some());
    }
}
