//! Saving and loading corpora as textual IR on disk.
//!
//! The paper's artifact ships its SPEC-derived LLVM-IR files; this module
//! gives the reproduction the same shape: `save_suite` materializes the
//! synthetic suite as `.ir` files (one directory per benchmark) that any
//! external tool — or the `optinline` CLI — can pick up, and `load_dir`
//! reads such a directory back through the parser/verifier.

use crate::suite::{Benchmark, Scale};
use optinline_ir::{parse_module, verify_module, Module};
use std::error::Error;
use std::path::{Path, PathBuf};

/// Writes one module to `path` in textual IR.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save_module(module: &Module, path: &Path) -> Result<(), Box<dyn Error>> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, module.to_string())?;
    Ok(())
}

/// Reads one module from `path`, parsing and verifying it.
///
/// # Errors
///
/// Fails on I/O, parse, or verifier errors, with the path in the message.
pub fn load_module(path: &Path) -> Result<Module, Box<dyn Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let module = parse_module(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    verify_module(&module).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(module)
}

/// Materializes the whole suite under `dir` as
/// `dir/<benchmark>/<NN>.ir`, returning the written paths.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save_suite(dir: &Path, scale: Scale) -> Result<Vec<PathBuf>, Box<dyn Error>> {
    let mut written = Vec::new();
    for bench in crate::suite::spec_suite(scale) {
        for (i, module) in bench.files.iter().enumerate() {
            let path = dir.join(bench.name).join(format!("{i:02}.ir"));
            save_module(module, &path)?;
            written.push(path);
        }
    }
    Ok(written)
}

/// Loads every `.ir` file under `dir` (one directory level per benchmark,
/// as produced by [`save_suite`]) back into [`Benchmark`]s.
///
/// # Errors
///
/// Fails if the directory cannot be read or any file fails to parse or
/// verify.
pub fn load_dir(dir: &Path) -> Result<Vec<Benchmark>, Box<dyn Error>> {
    let mut benches = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let mut files: Vec<_> = std::fs::read_dir(entry.path())?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "ir"))
            .collect();
        files.sort();
        let mut modules = Vec::new();
        for f in files {
            modules.push(load_module(&f)?);
        }
        if modules.is_empty() {
            continue;
        }
        // Benchmark names are 'static in the in-memory suite; disk corpora
        // use leaked names so both paths share one type.
        let name: &'static str =
            Box::leak(entry.file_name().to_string_lossy().into_owned().into_boxed_str());
        benches.push(Benchmark { name, files: modules });
    }
    Ok(benches)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("optinline_corpus_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn module_save_load_round_trips() {
        let dir = tmpdir("single");
        let module = crate::generator::generate_file(&crate::GenParams::named("disk", 9));
        let path = dir.join("disk.ir");
        save_module(&module, &path).unwrap();
        let loaded = load_module(&path).unwrap();
        assert_eq!(loaded, module);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn suite_save_load_round_trips() {
        let dir = tmpdir("suite");
        let written = save_suite(&dir, Scale::Small).unwrap();
        assert!(written.len() >= 20, "at least one file per benchmark");
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 20);
        let orig = crate::suite::spec_suite(Scale::Small);
        let find = |name: &str| loaded.iter().find(|b| b.name == name).expect("benchmark present");
        for b in &orig {
            assert_eq!(find(b.name).files, b.files, "{}", b.name);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_reports_broken_files_with_path() {
        let dir = tmpdir("broken");
        std::fs::create_dir_all(dir.join("bad")).unwrap();
        std::fs::write(dir.join("bad/00.ir"), "this is not IR").unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("00.ir"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
