//! # optinline-workloads
//!
//! Deterministic synthetic workloads for the optimal-inlining study.
//!
//! SPEC2017, SQLite, and LLVM sources are license-gated (the paper's own
//! artifact ships only derived IR for the same reason), so this crate
//! supplies (a) a seeded program [`generator`] whose output exercises every
//! inlining trade-off the paper's corpus exhibits, (b) a 20-benchmark
//! SPEC2017-shaped [`suite`], an SQLite-style amalgamation, and an
//! LLVM-style library, and (c) hand-crafted modules realizing the paper's
//! figures ([`samples`]).
//!
//! Everything is a pure function of its parameters: the same suite is
//! regenerated bit-for-bit on every run, which is what makes the
//! experiment harness's numbers reproducible.
//!
//! ```
//! use optinline_workloads::{spec_suite, Scale};
//!
//! let suite = spec_suite(Scale::Small);
//! assert_eq!(suite.len(), 20);
//! let total_sites: usize = suite
//!     .iter()
//!     .flat_map(|b| &b.files)
//!     .map(|f| f.inlinable_sites().len())
//!     .sum();
//! assert!(total_sites > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corpus;
pub mod generator;
pub mod rng;
pub mod samples;
pub mod shapes;
pub mod suite;

pub use corpus::{load_dir, load_module, save_module, save_suite};
pub use generator::{generate_file, generate_program, GenParams};
pub use suite::{amalgamation, large_library, paper_samples, spec_suite, Benchmark, Scale};
