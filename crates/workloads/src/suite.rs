//! The benchmark suites the experiments run on: a 20-benchmark
//! SPEC2017-shaped suite of generated files, an SQLite-style amalgamation,
//! and an LLVM-style multi-module library.
//!
//! Each benchmark gets a *profile* chosen to reproduce the qualitative
//! behaviour the paper reports for its namesake — e.g. `mfc` leans heavily
//! on constant-argument folding cascades (the paper's biggest autotuning
//! win), `imagick`/`parest` get shared-callee DCE stars (Figure 11/13
//! territory), `leela` gets wrapper chains (Figure 14), `cam4` is trivial
//! w.r.t. inlining, and `wrf`/`pop2` are fat-bodied and inline-averse.

use crate::generator::{generate_file, GenParams};
use crate::samples;
use optinline_ir::Module;

/// A named benchmark: a set of independently compiled files (modules).
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Benchmark name (SPEC2017-style).
    pub name: &'static str,
    /// The benchmark's translation units.
    pub files: Vec<Module>,
}

/// Suite scale, trading experiment fidelity for runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// A few files per benchmark with small call graphs — CI-sized.
    Small,
    /// The full synthetic suite used by `optinline-experiments`.
    Full,
}

struct Profile {
    name: &'static str,
    files: usize,
    n_internal: (usize, usize),
    avg_body_ops: usize,
    call_density: f64,
    const_arg_prob: f64,
    branchy_prob: f64,
    loop_prob: f64,
    wrapper_prob: f64,
    fat_prob: f64,
    recursion: bool,
}

#[allow(clippy::too_many_arguments)]
const fn profile(
    name: &'static str,
    files: usize,
    n_internal: (usize, usize),
    avg_body_ops: usize,
    call_density: f64,
    const_arg_prob: f64,
    branchy_prob: f64,
    wrapper_prob: f64,
    fat_prob: f64,
) -> Profile {
    Profile {
        name,
        files,
        n_internal,
        avg_body_ops,
        call_density,
        const_arg_prob,
        branchy_prob,
        loop_prob: 0.15,
        wrapper_prob,
        fat_prob,
        recursion: false,
    }
}

fn profiles() -> Vec<Profile> {
    vec![
        profile("blender", 14, (5, 12), 4, 1.4, 0.45, 0.35, 0.4, 0.15),
        profile("cactuBSSN", 8, (6, 11), 6, 1.6, 0.3, 0.2, 0.25, 0.3),
        // cam4: trivial w.r.t. inlining — no calls at all.
        profile("cam4", 5, (3, 5), 8, 0.0, 0.0, 0.2, 0.0, 0.1),
        profile("deepsjeng", 6, (4, 8), 4, 1.1, 0.35, 0.4, 0.35, 0.1),
        profile("gcc", 24, (6, 16), 4, 1.7, 0.4, 0.3, 0.4, 0.15),
        profile("imagick", 10, (5, 10), 6, 1.5, 0.3, 0.55, 0.2, 0.35),
        profile("lbm", 3, (2, 4), 4, 0.7, 0.5, 0.3, 0.3, 0.1),
        profile("leela", 8, (5, 10), 4, 1.4, 0.6, 0.45, 0.55, 0.1),
        profile("mfc", 4, (4, 8), 6, 1.3, 0.2, 0.5, 0.3, 0.3),
        profile("nab", 5, (4, 7), 5, 1.1, 0.4, 0.25, 0.3, 0.12),
        profile("namd", 6, (4, 8), 7, 1.2, 0.4, 0.3, 0.25, 0.2),
        profile("omnetpp", 10, (5, 11), 3, 1.5, 0.5, 0.3, 0.6, 0.08),
        profile("parest", 12, (6, 13), 5, 1.6, 0.65, 0.5, 0.3, 0.2),
        profile("perlbench", 12, (5, 12), 4, 1.5, 0.45, 0.35, 0.4, 0.15),
        profile("pop2", 6, (4, 8), 8, 1.0, 0.3, 0.2, 0.15, 0.35),
        profile("povray", 10, (5, 11), 4, 1.4, 0.5, 0.4, 0.35, 0.15),
        profile("wrf", 8, (4, 9), 9, 0.9, 0.25, 0.15, 0.12, 0.4),
        profile("x264", 10, (5, 10), 4, 1.4, 0.45, 0.5, 0.4, 0.12),
        profile("xalancbmk", 12, (6, 13), 3, 1.6, 0.5, 0.35, 0.55, 0.1),
        profile("xz", 4, (3, 6), 4, 1.0, 0.3, 0.35, 0.35, 0.1),
    ]
}

fn seed_for(bench: &str, file_idx: usize) -> u64 {
    // FNV-1a over the benchmark name, mixed with the index.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bench.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ (file_idx as u64).wrapping_mul(0x9E3779B97F4A7C15)
}

/// Builds the SPEC2017-shaped synthetic suite.
pub fn spec_suite(scale: Scale) -> Vec<Benchmark> {
    profiles()
        .into_iter()
        .map(|p| {
            let files = match scale {
                Scale::Small => p.files.min(3),
                Scale::Full => p.files,
            };
            let modules = (0..files)
                .map(|i| {
                    let seed = seed_for(p.name, i);
                    let (lo, hi) = p.n_internal;
                    let span = (hi - lo).max(1) as u64;
                    let n_internal = lo + (seed % span) as usize;
                    let n_internal = match scale {
                        Scale::Small => n_internal.min(5),
                        Scale::Full => n_internal,
                    };
                    let recursion = p.recursion || (p.name == "xz" && i == 0);
                    generate_file(&GenParams {
                        name: format!("{}/{:02}.ir", p.name, i),
                        seed,
                        n_internal,
                        n_public: 1 + (seed % 2) as usize,
                        avg_body_ops: p.avg_body_ops,
                        call_density: p.call_density,
                        const_arg_prob: p.const_arg_prob,
                        branchy_prob: p.branchy_prob,
                        loop_prob: p.loop_prob,
                        wrapper_prob: p.wrapper_prob,
                        fat_prob: p.fat_prob,
                        recursion,
                        n_globals: 2,
                        noinline_prob: 0.0,
                        clusters: 1 + (seed >> 8) as usize % 3,
                        call_window: 1 + (seed >> 16) as usize % 3,
                    })
                })
                .collect();
            Benchmark { name: p.name, files: modules }
        })
        .collect()
}

/// The SQLite-style amalgamation: one large module, wrapper- and
/// branch-heavy, with many inlinable calls (§5.2.3).
pub fn amalgamation(scale: Scale) -> Module {
    let n_internal = match scale {
        Scale::Small => 24,
        Scale::Full => 110,
    };
    generate_file(&GenParams {
        name: "sqlite_amalgamation.ir".into(),
        seed: 0x5EA7_B17E,
        n_internal,
        n_public: 6,
        avg_body_ops: 6,
        call_density: 1.8,
        // Wins come from call elimination and single-caller collapse, not
        // constant folding: that is what makes the x86/wasm contrast of
        // §5.2.3 visible (folding pays on any target; call overhead and
        // per-function overhead only pay where they are expensive).
        const_arg_prob: 0.2,
        branchy_prob: 0.25,
        loop_prob: 0.12,
        wrapper_prob: 0.45,
        fat_prob: 0.18,
        recursion: true,
        n_globals: 4,
        noinline_prob: 0.0,
        clusters: 4,
        call_window: 2,
    })
}

/// The LLVM-style library: several large modules with big call graphs
/// (§5.2.3's `llvm/lib` case study, scaled to laptop size).
pub fn large_library(scale: Scale) -> Vec<Module> {
    let (n_modules, n_internal) = match scale {
        Scale::Small => (2, 18),
        Scale::Full => (6, 60),
    };
    (0..n_modules)
        .map(|i| {
            generate_file(&GenParams {
                name: format!("llvm_lib/{i:02}.ir"),
                seed: 0x11_77_AA_00 + i as u64,
                n_internal,
                n_public: 4,
                avg_body_ops: 7,
                call_density: 2.0,
                const_arg_prob: 0.5,
                branchy_prob: 0.35,
                loop_prob: 0.15,
                wrapper_prob: 0.3,
                fat_prob: 0.2,
                recursion: i == 0,
                n_globals: 3,
                noinline_prob: 0.0,
                clusters: 3,
                call_window: 5,
            })
        })
        .collect()
}

/// The hand-crafted paper-figure modules, for the case-study experiments.
pub fn paper_samples() -> Vec<Module> {
    vec![
        samples::listing1(),
        samples::fig2(),
        samples::fig4(),
        samples::fig5(),
        samples::dce_star(5),
        samples::outline_trap(6),
        samples::dce_chain(),
        samples::xalan_bitmap(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twenty_benchmarks() {
        let suite = spec_suite(Scale::Small);
        assert_eq!(suite.len(), 20);
        let names: Vec<_> = suite.iter().map(|b| b.name).collect();
        assert!(names.contains(&"gcc"));
        assert!(names.contains(&"mfc"));
        assert!(names.contains(&"xalancbmk"));
    }

    #[test]
    fn suite_is_deterministic() {
        let a = spec_suite(Scale::Small);
        let b = spec_suite(Scale::Small);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.files, y.files);
        }
    }

    #[test]
    fn cam4_is_trivial_with_respect_to_inlining() {
        let suite = spec_suite(Scale::Small);
        let cam4 = suite.iter().find(|b| b.name == "cam4").unwrap();
        for f in &cam4.files {
            assert!(f.inlinable_sites().is_empty(), "{} has sites", f.name);
        }
    }

    #[test]
    fn non_trivial_benchmarks_have_sites() {
        let suite = spec_suite(Scale::Small);
        for b in suite.iter().filter(|b| b.name != "cam4") {
            let total: usize = b.files.iter().map(|f| f.inlinable_sites().len()).sum();
            assert!(total > 0, "{} should have inlinable sites", b.name);
        }
    }

    #[test]
    fn all_small_suite_files_verify_and_run() {
        for b in spec_suite(Scale::Small) {
            for f in &b.files {
                optinline_ir::verify_module(f).unwrap();
                optinline_ir::interp::run_main(f).unwrap_or_else(|e| panic!("{}: {e}", f.name));
            }
        }
    }

    #[test]
    fn amalgamation_is_large_and_runnable() {
        let m = amalgamation(Scale::Small);
        assert!(m.inlinable_sites().len() >= 20);
        optinline_ir::verify_module(&m).unwrap();
        optinline_ir::interp::run_main(&m).unwrap();
    }

    #[test]
    fn large_library_produces_multiple_modules() {
        let lib = large_library(Scale::Small);
        assert_eq!(lib.len(), 2);
        for m in &lib {
            assert!(m.inlinable_sites().len() >= 15, "{}", m.name);
            optinline_ir::verify_module(m).unwrap();
        }
    }

    #[test]
    fn full_scale_is_bigger_than_small() {
        let small: usize = spec_suite(Scale::Small).iter().map(|b| b.files.len()).sum();
        let full: usize = spec_suite(Scale::Full).iter().map(|b| b.files.len()).sum();
        assert!(full > small * 2);
        assert!(
            amalgamation(Scale::Full).inlinable_sites().len()
                > amalgamation(Scale::Small).inlinable_sites().len()
        );
    }
}
