//! The deterministic synthetic program generator.
//!
//! SPEC2017, SQLite, and LLVM sources are license-gated (the paper's own
//! artifact ships derived IR for the same reason), so the experiments run
//! on generated modules whose call graphs and bodies reproduce the
//! *structure* that makes inlining-for-size non-trivial:
//!
//! - tiny wrappers and leaves (inlining wins),
//! - fat callees with several callers (inlining bloats),
//! - branchy callees guarded by arguments that often arrive constant
//!   (inlining unlocks folding cascades and DCE),
//! - call graphs with bridges, stars, diamonds, and multiple components
//!   (the topology §3.2 exploits),
//! - bounded loops and global stores so programs have observable,
//!   terminating behaviour for the interpreter (Figure 19).
//!
//! Generation is a pure function of [`GenParams`] — same params, same
//! module, bit for bit.

use crate::rng::StdRng;
use optinline_ir::{assert_verified, BinOp, FuncBuilder, FuncId, GlobalId, Linkage, Module};

/// Parameters of one generated file (translation unit).
#[derive(Clone, Debug, PartialEq)]
pub struct GenParams {
    /// Module name (reported in experiment output).
    pub name: String,
    /// RNG seed; everything else equal, the seed selects the file.
    pub seed: u64,
    /// Number of internal (inlinable, deletable) functions.
    pub n_internal: usize,
    /// Number of extra public entry points besides `main`.
    pub n_public: usize,
    /// Average straight-line ops per function body.
    pub avg_body_ops: usize,
    /// Expected number of calls per non-leaf function.
    pub call_density: f64,
    /// Probability that a call argument is a literal constant.
    pub const_arg_prob: f64,
    /// Probability a function guards a heavy region behind an
    /// argument-dependent branch (the folding-cascade makers).
    pub branchy_prob: f64,
    /// Probability a function contains a bounded loop.
    pub loop_prob: f64,
    /// Probability a function is a trivial forwarding wrapper.
    pub wrapper_prob: f64,
    /// Probability a function body is "fat" (~4× the average ops).
    pub fat_prob: f64,
    /// Whether to add one self-recursive function (guarded, terminating).
    pub recursion: bool,
    /// Number of global cells (effect sinks).
    pub n_globals: usize,
    /// Probability an internal function is marked non-inlinable (the
    /// paper's footnote 1: not every callee can be inlined). Calls to such
    /// functions are not candidates and do not join the inlining graph.
    pub noinline_prob: f64,
    /// Number of independent call-graph clusters. Functions only call
    /// within their cluster, and each cluster gets its own public root, so
    /// `clusters > 1` yields disconnected inlining components — the
    /// topology §3.1 of the paper exploits.
    pub clusters: usize,
    /// Callee-selection window: a function calls functions at most this far
    /// below it in its cluster. Small windows yield chain/tree graphs full
    /// of bridges (§3.2); large windows yield dense shared-callee graphs.
    pub call_window: usize,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            name: "generated".into(),
            seed: 0,
            n_internal: 8,
            n_public: 1,
            avg_body_ops: 6,
            call_density: 1.3,
            const_arg_prob: 0.5,
            branchy_prob: 0.35,
            loop_prob: 0.15,
            wrapper_prob: 0.2,
            fat_prob: 0.15,
            recursion: false,
            n_globals: 2,
            noinline_prob: 0.0,
            clusters: 1,
            call_window: 4,
        }
    }
}

impl GenParams {
    /// Convenience: a named, seeded variant of the defaults.
    pub fn named(name: impl Into<String>, seed: u64) -> Self {
        GenParams { name: name.into(), seed, ..Default::default() }
    }

    /// Samples a randomized parameter point for differential fuzzing — a
    /// pure function of `seed`, so a failing case is reproducible from its
    /// seed alone.
    ///
    /// The distribution deliberately spans the structural regimes the
    /// module docs call out (wrappers, fat callees, branchy folding bait,
    /// loops, recursion, noinline marks, multi-cluster graphs, chain vs.
    /// dense windows), because each regime stresses a different pass
    /// interaction in the pipeline under test. Sizes stay small: oracles
    /// interpret every public entry point several times per configuration,
    /// and minimal reproducers are easier to read when modules start small.
    pub fn fuzz_sample(seed: u64) -> Self {
        // The xor salt decorrelates parameter sampling from body
        // generation, which reuses the raw seed space elsewhere.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        GenParams {
            name: format!("fuzz{seed}"),
            seed: rng.next_u64(),
            n_internal: rng.gen_range(2..14),
            n_public: rng.gen_range(1..4),
            avg_body_ops: rng.gen_range(2..10),
            call_density: rng.gen_range(0.5..2.5),
            const_arg_prob: rng.gen_range(0.0..1.0),
            branchy_prob: rng.gen_range(0.0..0.7),
            loop_prob: rng.gen_range(0.0..0.4),
            wrapper_prob: rng.gen_range(0.0..0.5),
            fat_prob: rng.gen_range(0.0..0.4),
            recursion: rng.gen_bool(0.3),
            n_globals: rng.gen_range(1..4),
            noinline_prob: if rng.gen_bool(0.4) { rng.gen_range(0.05..0.4) } else { 0.0 },
            clusters: rng.gen_range(1..4),
            call_window: rng.gen_range(1..7),
        }
    }
}

const OPS: [BinOp; 6] = [BinOp::Add, BinOp::Sub, BinOp::Xor, BinOp::And, BinOp::Or, BinOp::Mul];

struct Gen {
    rng: StdRng,
    globals: Vec<GlobalId>,
}

impl Gen {
    fn op(&mut self) -> BinOp {
        OPS[self.rng.gen_range(0..OPS.len())]
    }

    fn small_const(&mut self) -> i64 {
        self.rng.gen_range(-64..256)
    }

    /// Emits `n` straight-line ops folding into an accumulator.
    fn arith(
        &mut self,
        b: &mut FuncBuilder<'_>,
        mut acc: optinline_ir::ValueId,
        n: usize,
    ) -> optinline_ir::ValueId {
        for _ in 0..n {
            let op = self.op();
            let c = self.small_const();
            let cv = b.iconst(c);
            acc = b.bin(op, acc, cv);
        }
        acc
    }

    /// Emits a call to `callee`, choosing constant or flowing arguments.
    fn call(
        &mut self,
        b: &mut FuncBuilder<'_>,
        callee: FuncId,
        n_params: usize,
        flow: optinline_ir::ValueId,
        const_arg_prob: f64,
    ) -> optinline_ir::ValueId {
        let mut args = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            if self.rng.gen_bool(const_arg_prob) {
                let c = self.rng.gen_range(0..8);
                args.push(b.iconst(c));
            } else {
                args.push(flow);
            }
        }
        b.call(callee, &args).expect("generated calls use their results")
    }
}

/// Generates one file. The call graph is a DAG over the internal functions
/// (higher indices call lower ones) with public roots on top, so generated
/// programs always terminate; an optional guarded self-recursive function
/// can be added ([`GenParams::recursion`]).
pub fn generate_file(params: &GenParams) -> Module {
    let mut module = Module::new(params.name.clone());
    let globals: Vec<GlobalId> = (0..params.n_globals.max(1))
        .map(|i| module.add_global(format!("g{i}"), i as i64 * 3 + 1))
        .collect();
    let mut g = Gen { rng: StdRng::seed_from_u64(params.seed), globals };

    // Declare internals bottom-up: function i may call lower-indexed
    // functions of its own cluster, within the configured window.
    let n_clusters = params.clusters.clamp(1, params.n_internal.max(1));
    let mut internals: Vec<(FuncId, usize)> = Vec::new(); // (id, n_params)
    let mut cluster_of: Vec<usize> = Vec::new();
    for i in 0..params.n_internal {
        let n_params = g.rng.gen_range(1..=2);
        let id = module.declare_function(format!("f{i}"), n_params, Linkage::Internal);
        if params.noinline_prob > 0.0 && g.rng.gen_bool(params.noinline_prob) {
            module.func_mut(id).inlinable = false;
        }
        internals.push((id, n_params));
        cluster_of.push(i % n_clusters);
    }

    for i in 0..params.n_internal {
        let (fid, _) = internals[i];
        let window_lo = i.saturating_sub(params.call_window.max(1) * n_clusters);
        let callees: Vec<(FuncId, usize)> = (window_lo..i)
            .filter(|&j| cluster_of[j] == cluster_of[i])
            .map(|j| internals[j])
            .collect();
        build_body(&mut g, &mut module, fid, &callees, params);
    }

    if params.recursion && params.n_internal > 0 {
        let rec = module.declare_function("rec", 1, Linkage::Internal);
        let (leaf, leaf_params) = internals[0];
        let mut b = FuncBuilder::new(&mut module, rec);
        let raw = b.param(0);
        // Clamp the countdown so arbitrary caller values cannot overflow
        // the interpreter's call stack.
        let mask = b.iconst(15);
        let n = b.bin(BinOp::And, raw, mask);
        let zero = b.iconst(0);
        let done = b.bin(BinOp::Le, n, zero);
        let (base, _) = b.new_block(0);
        let (step, _) = b.new_block(0);
        b.branch(done, base, &[], step, &[]);
        b.switch_to(base);
        b.ret(Some(zero));
        b.switch_to(step);
        let one = b.iconst(1);
        let n1 = b.bin(BinOp::Sub, n, one);
        let sub = b.call(rec, &[n1]).unwrap();
        let args: Vec<_> = (0..leaf_params).map(|_| sub).collect();
        let leaf_v = b.call(leaf, &args).unwrap();
        let r = b.bin(BinOp::Add, sub, leaf_v);
        b.ret(Some(r));
        internals.push((rec, 1));
    }

    // One public root per cluster, each calling the top functions of its
    // cluster only — clusters stay disconnected in the call graph.
    for c in 0..n_clusters.min(params.n_public.max(1)) {
        let id = module.declare_function(format!("entry{c}"), 1, Linkage::Public);
        let targets: Vec<(FuncId, usize)> = (0..params.n_internal)
            .filter(|&j| cluster_of[j] == c)
            .rev()
            .take(2)
            .map(|j| internals[j])
            .collect();
        build_entry(&mut g, &mut module, id, &targets, 2.min(targets.len().max(1)), params, false);
    }
    // `main` drives cluster 0 (and the recursive function when present).
    let main_targets: Vec<(FuncId, usize)> = if params.recursion && !internals.is_empty() {
        vec![*internals.last().expect("recursion pushed a function")]
    } else {
        (0..params.n_internal)
            .filter(|&j| cluster_of[j] == 0)
            .rev()
            .take(2)
            .map(|j| internals[j])
            .collect()
    };
    let main = module.declare_function("main", 0, Linkage::Public);
    build_entry(
        &mut g,
        &mut module,
        main,
        &main_targets,
        2.min(main_targets.len().max(1)),
        params,
        true,
    );

    assert_verified(&module);
    module
}

fn build_body(
    g: &mut Gen,
    module: &mut Module,
    fid: FuncId,
    callees: &[(FuncId, usize)],
    params: &GenParams,
) {
    let is_wrapper = !callees.is_empty() && g.rng.gen_bool(params.wrapper_prob);
    let is_branchy = g.rng.gen_bool(params.branchy_prob);
    let has_loop = g.rng.gen_bool(params.loop_prob);
    let is_fat = g.rng.gen_bool(params.fat_prob);
    let base_ops = if is_fat { params.avg_body_ops * 4 } else { params.avg_body_ops };
    let ops = g.rng.gen_range((base_ops / 2).max(1)..=base_ops.max(1) * 3 / 2 + 1);

    let mut b = FuncBuilder::new(module, fid);
    let p = b.param(0);

    if is_wrapper {
        // Forward to one callee, at most one extra op.
        let (callee, n_params) = callees[g.rng.gen_range(0..callees.len())];
        let v = g.call(&mut b, callee, n_params, p, params.const_arg_prob);
        let r = if g.rng.gen_bool(0.5) { b.bin(BinOp::Add, v, p) } else { v };
        b.ret(Some(r));
        return;
    }

    let mut acc = g.arith(&mut b, p, ops / 2);

    if is_branchy {
        // Heavy region guarded by a comparison with a small constant —
        // constant arguments from callers fold the guard after inlining.
        let magic = b.iconst(g.rng.gen_range(0..4));
        let cond = b.bin(BinOp::Eq, p, magic);
        let (cheap, _) = b.new_block(0);
        let (heavy, _) = b.new_block(0);
        let (join, jp) = b.new_block(1);
        b.branch(cond, cheap, &[], heavy, &[]);
        b.switch_to(cheap);
        let c = b.iconst(1);
        b.jump(join, &[c]);
        b.switch_to(heavy);
        let heavy_ops = ops.max(6) * 2;
        let hv = g.arith(&mut b, acc, heavy_ops);
        b.jump(join, &[hv]);
        b.switch_to(join);
        acc = jp[0];
    }

    if has_loop {
        let bound = b.iconst(g.rng.gen_range(3..12));
        let zero = b.iconst(0);
        let (hdr, hp) = b.new_block(2);
        let (body, _) = b.new_block(0);
        let (exit, _) = b.new_block(0);
        b.jump(hdr, &[zero, acc]);
        let (i, sum) = (hp[0], hp[1]);
        let c = b.bin(BinOp::Lt, i, bound);
        b.branch(c, body, &[], exit, &[]);
        b.switch_to(body);
        let sum2 = b.bin(g.op(), sum, i);
        let one = b.iconst(1);
        let i2 = b.bin(BinOp::Add, i, one);
        b.jump(hdr, &[i2, sum2]);
        b.switch_to(exit);
        acc = sum;
    }

    // Calls: Poisson-ish with expectation call_density.
    if !callees.is_empty() {
        let mut budget = params.call_density;
        while budget > 0.0 {
            let take = if budget >= 1.0 { true } else { g.rng.gen_bool(budget) };
            if take {
                let (callee, n_params) = callees[g.rng.gen_range(0..callees.len())];
                let v = g.call(&mut b, callee, n_params, acc, params.const_arg_prob);
                acc = b.bin(g.op(), acc, v);
            }
            budget -= 1.0;
        }
    }

    // Occasionally touch a global so effects exist.
    if g.rng.gen_bool(0.3) {
        let gl = g.globals[g.rng.gen_range(0..g.globals.len())];
        let old = b.load(gl);
        let neu = b.bin(BinOp::Add, old, acc);
        b.store(gl, neu);
    }

    acc = g.arith(&mut b, acc, ops.div_ceil(2));
    b.ret(Some(acc));
}

fn build_entry(
    g: &mut Gen,
    module: &mut Module,
    fid: FuncId,
    targets: &[(FuncId, usize)],
    n_targets: usize,
    params: &GenParams,
    is_main: bool,
) {
    let mut b = FuncBuilder::new(module, fid);
    let seedv = if is_main { b.iconst(9) } else { b.param(0) };
    let mut acc = seedv;
    if targets.is_empty() || params.call_density == 0.0 {
        // Zero call density means the whole file is trivial w.r.t.
        // inlining (the paper's 746 decision-free files).
        let r = g.arith(&mut b, acc, params.avg_body_ops);
        if is_main {
            let gl = g.globals[0];
            b.store(gl, r);
        }
        b.ret(Some(r));
        return;
    }
    for k in 0..n_targets.min(targets.len()) {
        let (callee, n_params) = targets[k % targets.len()];
        let v = g.call(&mut b, callee, n_params, acc, params.const_arg_prob);
        acc = b.bin(g.op(), acc, v);
    }
    if is_main {
        let gl = g.globals[0];
        b.store(gl, acc);
    }
    b.ret(Some(acc));
}

/// Generates a multi-file *program*: `n_files` modules where later files
/// call earlier files' public entry points through `extern` declarations.
///
/// Per-file, those cross-TU calls are not inlining candidates (the callee
/// body is unavailable — the compilation-model limitation of the paper's
/// footnote 5); linking the program with
/// [`link_modules`](optinline_ir::link_modules) resolves them and exposes
/// the cross-file headroom the `lto` experiment measures.
pub fn generate_program(n_files: usize, base: &GenParams) -> Vec<Module> {
    assert!(n_files >= 1, "a program needs at least one file");
    let mut modules: Vec<Module> = Vec::with_capacity(n_files);
    // Public symbols exported so far: (name, n_params).
    let mut exports: Vec<(String, usize)> = Vec::new();
    for i in 0..n_files {
        let params = GenParams {
            name: format!("{}/{i:02}.ir", base.name),
            seed: base.seed.wrapping_add(i as u64 * 0x9E37),
            ..base.clone()
        };
        let mut m = generate_file(&params);
        // Qualify this file's public names so they are unique program-wide
        // (only file 0 keeps the `main` entry point).
        let renames: Vec<(FuncId, String)> = m
            .iter_funcs()
            .filter(|(_, f)| f.linkage == Linkage::Public)
            .filter(|(_, f)| !(i == 0 && f.name == "main"))
            .map(|(id, f)| (id, format!("u{i}_{}", f.name)))
            .collect();
        for (id, name) in renames {
            m.func_mut(id).name = name;
        }
        // Cross-TU users: one public function per earlier file referenced,
        // calling that file's qualified entry through an extern prototype.
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0xC0FFEE);
        let n_imports = exports.len().min(2);
        for k in 0..n_imports {
            let (name, n_params) = exports[rng.gen_range(0..exports.len())].clone();
            let already = m.func_by_name(&name);
            let ext = already.unwrap_or_else(|| m.declare_extern(name.clone(), n_params));
            let user = m.declare_function(format!("u{i}_xuse{k}"), 1, Linkage::Public);
            let mut b = FuncBuilder::new(&mut m, user);
            let p = b.param(0);
            let args: Vec<_> = (0..n_params).map(|_| p).collect();
            let v = b.call(ext, &args).unwrap();
            let r = b.bin(BinOp::Add, v, p);
            b.ret(Some(r));
        }
        assert_verified(&m);
        exports.extend(
            m.iter_funcs()
                .filter(|(id, f)| f.linkage == Linkage::Public && !m.is_extern_decl(*id))
                .filter(|(_, f)| f.name != "main" && !f.name.contains("xuse"))
                .map(|(_, f)| (f.name.clone(), f.param_count())),
        );
        modules.push(m);
    }
    modules
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinline_ir::interp::run_main;

    #[test]
    fn generation_is_deterministic() {
        let p = GenParams::named("det", 1234);
        let a = generate_file(&p);
        let b = generate_file(&p);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_file(&GenParams::named("x", 1));
        let b = generate_file(&GenParams::named("x", 2));
        assert_ne!(a, b);
    }

    #[test]
    fn generated_files_verify_and_terminate() {
        for seed in 0..25 {
            let p = GenParams {
                recursion: seed % 5 == 0,
                ..GenParams::named(format!("s{seed}"), seed)
            };
            let m = generate_file(&p);
            optinline_ir::verify_module(&m).unwrap();
            let out = run_main(&m).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(out.steps > 0);
        }
    }

    #[test]
    fn fuzz_sample_is_deterministic_and_varied() {
        for seed in 0..50 {
            assert_eq!(GenParams::fuzz_sample(seed), GenParams::fuzz_sample(seed));
        }
        let distinct: std::collections::HashSet<usize> =
            (0..50).map(|s| GenParams::fuzz_sample(s).n_internal).collect();
        assert!(distinct.len() > 3, "sampled params barely vary: {distinct:?}");
    }

    #[test]
    fn fuzz_sampled_modules_verify() {
        for seed in 0..30 {
            let m = generate_file(&GenParams::fuzz_sample(seed));
            optinline_ir::verify_module(&m)
                .unwrap_or_else(|e| panic!("fuzz seed {seed} generated broken IR: {e}"));
            assert!(m.func_by_name("main").is_some());
        }
    }

    #[test]
    fn generated_files_have_inlinable_sites() {
        let m = generate_file(&GenParams::named("sites", 77));
        assert!(!m.inlinable_sites().is_empty());
    }

    #[test]
    fn density_controls_site_count() {
        let sparse =
            generate_file(&GenParams { call_density: 0.4, ..GenParams::named("sparse", 5) });
        let dense = generate_file(&GenParams {
            call_density: 3.0,
            n_internal: 12,
            ..GenParams::named("dense", 5)
        });
        assert!(dense.inlinable_sites().len() > sparse.inlinable_sites().len());
    }

    #[test]
    fn programs_have_cross_file_externs_that_link_resolves() {
        let files = generate_program(3, &GenParams::named("prog", 77));
        assert_eq!(files.len(), 3);
        let per_file_sites: usize = files.iter().map(|m| m.inlinable_sites().len()).sum();
        let has_externs = files.iter().any(|m| m.func_ids().any(|id| m.is_extern_decl(id)));
        assert!(has_externs, "later files should import earlier files' entries");
        let linked = optinline_ir::link_modules("prog", &files);
        optinline_ir::verify_module(&linked).unwrap();
        let linked_sites = linked.inlinable_sites().len();
        assert!(
            linked_sites > per_file_sites,
            "linking must expose cross-TU candidates ({linked_sites} vs {per_file_sites})"
        );
        optinline_ir::interp::run_main(&linked).unwrap();
    }

    #[test]
    fn noinline_probability_marks_functions_non_inlinable() {
        let m = generate_file(&GenParams { noinline_prob: 1.0, ..GenParams::named("ni", 3) });
        assert!(m.iter_funcs().any(|(_, f)| !f.inlinable));
        assert!(m.inlinable_sites().is_empty());
        optinline_ir::verify_module(&m).unwrap();
        optinline_ir::interp::run_main(&m).unwrap();
    }

    #[test]
    fn program_generation_is_deterministic() {
        let a = generate_program(3, &GenParams::named("prog", 5));
        let b = generate_program(3, &GenParams::named("prog", 5));
        assert_eq!(a, b);
    }

    #[test]
    fn recursion_flag_adds_a_guarded_recursive_function() {
        let m = generate_file(&GenParams { recursion: true, ..GenParams::named("rec", 3) });
        let rec = m.func_by_name("rec").unwrap();
        let edges = m.func(rec).call_edges();
        assert!(edges.iter().any(|(_, callee)| *callee == rec));
        run_main(&m).unwrap();
    }
}
