//! Minimal deterministic pseudo-random number generator.
//!
//! The generator only needs reproducible streams — same seed, same module,
//! bit for bit — not cryptographic quality, so this is a self-contained
//! SplitMix64 with the tiny slice of the `rand` API the [`generator`]
//! actually uses (`seed_from_u64`, `gen_range`, `gen_bool`). Keeping it
//! in-tree removes the workspace's only third-party dependency.
//!
//! [`generator`]: crate::generator

use std::ops::{Range, RangeInclusive};

/// A seeded SplitMix64 stream.
///
/// The name mirrors `rand::rngs::StdRng` so call sites read idiomatically,
/// but the output stream is this crate's own (stable across toolchains and
/// releases, which `rand` does not guarantee).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64 finalizer).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (`n > 0`), via the multiply-shift reduction.
    fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 bits of the draw give a uniform float in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// Ranges [`StdRng::gen_range`] can sample a `T` from. The element type is
/// a trait *parameter* (as in `rand`) so the call site's expected return
/// type drives integer-literal inference.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        // 53 bits of the draw give a uniform float in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = r.gen_range(-64..256);
            assert!((-64..256).contains(&x));
            let y: usize = r.gen_range(3..12);
            assert!((3..12).contains(&y));
            let z: usize = r.gen_range(1..=2);
            assert!((1..=2).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_f64_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        let mut lo_half = 0;
        for _ in 0..1000 {
            let x = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            if x < 0.5 {
                lo_half += 1;
            }
        }
        assert!((300..700).contains(&lo_half), "suspicious bias: {lo_half}/1000");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let heads = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&heads), "suspicious bias: {heads}/1000");
    }
}
