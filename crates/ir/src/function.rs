//! Functions and basic blocks.

use crate::ids::{BlockId, CallSiteId, FuncId, ValueId};
use crate::inst::{Inst, Terminator};

/// Linkage of a function, determining whether it may be deleted once all
/// calls to it have been inlined.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Linkage {
    /// Externally visible: must be kept in the binary even if uncalled
    /// (entry points, exported API).
    #[default]
    Public,
    /// Visible only inside this module: deletable once uncalled.
    Internal,
}

/// A basic block: parameters, straight-line instructions, one terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Block parameters (the SSA replacement for phi nodes). The entry
    /// block's parameters are the function's parameters.
    pub params: Vec<ValueId>,
    /// Straight-line instructions, in execution order.
    pub insts: Vec<Inst>,
    /// The block terminator.
    pub term: Terminator,
}

impl Block {
    /// Creates an empty block with the given parameters. The terminator
    /// defaults to [`Terminator::Unreachable`] until set.
    pub fn new(params: Vec<ValueId>) -> Self {
        Block { params, insts: Vec::new(), term: Terminator::Unreachable }
    }
}

/// A function: a name, linkage, and a CFG of [`Block`]s.
///
/// The entry block is always block `b0`; its parameters are the function's
/// parameters. Value ids are function-local and dense.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    /// Function name (unique within a module).
    pub name: String,
    /// Externally visible or internal.
    pub linkage: Linkage,
    /// Whether an inliner may inline calls to this function. Mirrors the
    /// paper's non-inlinable callees (e.g. body unavailable).
    pub inlinable: bool,
    /// Basic blocks; `blocks[0]` is the entry block.
    pub blocks: Vec<Block>,
    next_value: u32,
}

impl Function {
    /// Creates a function with `n_params` parameters and an empty entry
    /// block. The entry block's terminator starts as `unreachable`.
    pub fn new(name: impl Into<String>, n_params: usize, linkage: Linkage) -> Self {
        let params: Vec<ValueId> = (0..n_params as u32).map(ValueId::new).collect();
        Function {
            name: name.into(),
            linkage,
            inlinable: true,
            blocks: vec![Block::new(params)],
            next_value: n_params as u32,
        }
    }

    /// Returns the entry block id (`b0`).
    pub fn entry(&self) -> BlockId {
        BlockId::new(0)
    }

    /// Returns the function's parameters (the entry block's parameters).
    pub fn params(&self) -> &[ValueId] {
        &self.blocks[0].params
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.blocks[0].params.len()
    }

    /// Allocates a fresh SSA value id.
    pub fn new_value(&mut self) -> ValueId {
        let v = ValueId::new(self.next_value);
        self.next_value += 1;
        v
    }

    /// Highest value id ever allocated plus one (the dense id bound).
    pub fn value_bound(&self) -> u32 {
        self.next_value
    }

    /// Bumps the dense id bound to at least `bound`. Used by the parser and
    /// by block-cloning code that copies value ids verbatim.
    pub fn reserve_values(&mut self, bound: u32) {
        self.next_value = self.next_value.max(bound);
    }

    /// Appends a new block with the given parameters, returning its id.
    pub fn add_block(&mut self, params: Vec<ValueId>) -> BlockId {
        let id = BlockId::new(self.blocks.len() as u32);
        self.blocks.push(Block::new(params));
        id
    }

    /// Returns a shared reference to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Returns an exclusive reference to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates over `(BlockId, &Block)` pairs in layout order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId::new(i as u32), b))
    }

    /// Total number of instructions across all blocks (terminators excluded).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Collects every call site id appearing in this function (copies of the
    /// same original site are reported once per occurrence).
    pub fn call_sites(&self) -> Vec<CallSiteId> {
        let mut out = Vec::new();
        for b in &self.blocks {
            for i in &b.insts {
                if let Inst::Call { site, .. } = i {
                    out.push(*site);
                }
            }
        }
        out
    }

    /// Collects `(site, callee)` pairs for every call instruction.
    pub fn call_edges(&self) -> Vec<(CallSiteId, FuncId)> {
        let mut out = Vec::new();
        for b in &self.blocks {
            for i in &b.insts {
                if let Inst::Call { site, callee, .. } = i {
                    out.push((*site, *callee));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GlobalId;

    #[test]
    fn new_function_has_entry_with_params() {
        let f = Function::new("f", 2, Linkage::Internal);
        assert_eq!(f.entry(), BlockId::new(0));
        assert_eq!(f.params(), &[ValueId::new(0), ValueId::new(1)]);
        assert_eq!(f.param_count(), 2);
        assert_eq!(f.value_bound(), 2);
    }

    #[test]
    fn new_value_is_dense() {
        let mut f = Function::new("f", 1, Linkage::Public);
        let v = f.new_value();
        assert_eq!(v, ValueId::new(1));
        assert_eq!(f.new_value(), ValueId::new(2));
        assert_eq!(f.value_bound(), 3);
        f.reserve_values(10);
        assert_eq!(f.new_value(), ValueId::new(10));
    }

    #[test]
    fn add_block_and_access() {
        let mut f = Function::new("f", 0, Linkage::Public);
        let b1 = f.add_block(vec![ValueId::new(5)]);
        assert_eq!(b1, BlockId::new(1));
        assert_eq!(f.block(b1).params, vec![ValueId::new(5)]);
        f.block_mut(b1).term = Terminator::Return(None);
        assert_eq!(f.block(b1).term, Terminator::Return(None));
        assert_eq!(f.iter_blocks().count(), 2);
    }

    #[test]
    fn call_sites_and_edges_collected() {
        let mut f = Function::new("f", 0, Linkage::Public);
        let v = f.new_value();
        f.block_mut(BlockId::new(0)).insts.push(Inst::Call {
            dst: Some(v),
            callee: FuncId::new(3),
            args: vec![],
            site: CallSiteId::new(7),
            inline_path: vec![],
        });
        f.block_mut(BlockId::new(0)).insts.push(Inst::Store { global: GlobalId::new(0), src: v });
        assert_eq!(f.call_sites(), vec![CallSiteId::new(7)]);
        assert_eq!(f.call_edges(), vec![(CallSiteId::new(7), FuncId::new(3))]);
        assert_eq!(f.inst_count(), 2);
    }
}
