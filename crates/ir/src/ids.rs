//! Strongly-typed identifiers for IR entities.
//!
//! All identifiers are small `u32` newtypes ([C-NEWTYPE]): they are cheap to
//! copy, hash, and order, and the type system prevents mixing, say, a block
//! index with a value index.
//!
//! [`CallSiteId`] is special: it is minted once per *source-level* call and is
//! preserved when the inliner clones a call instruction. All copies of a call
//! are therefore *coupled* — they share one inlining decision — exactly as in
//! §2 of the paper.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a raw index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index backing this identifier.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` backing this identifier.
            pub const fn as_u32(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type! {
    /// Identifies a function within a [`Module`](crate::Module).
    ///
    /// `FuncId`s are dense indices into the module's function table.
    FuncId, "%"
}

id_type! {
    /// Identifies a basic block within a [`Function`](crate::Function).
    BlockId, "b"
}

id_type! {
    /// Identifies an SSA value within a [`Function`](crate::Function).
    ///
    /// Values are either block parameters or instruction results.
    ValueId, "v"
}

id_type! {
    /// Identifies a global cell within a [`Module`](crate::Module).
    GlobalId, "@"
}

id_type! {
    /// Identifies an *original* call site, module-wide.
    ///
    /// Cloned copies of a call (produced by inlining) keep the original id, so
    /// a single inlining decision applies to every copy (the "coupled" model
    /// from §2 of the paper).
    CallSiteId, "s"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_raw_index() {
        let f = FuncId::new(7);
        assert_eq!(f.index(), 7);
        assert_eq!(f.as_u32(), 7);
        assert_eq!(usize::from(f), 7);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(FuncId::new(3).to_string(), "%3");
        assert_eq!(BlockId::new(0).to_string(), "b0");
        assert_eq!(ValueId::new(12).to_string(), "v12");
        assert_eq!(GlobalId::new(1).to_string(), "@1");
        assert_eq!(CallSiteId::new(9).to_string(), "s9");
        assert_eq!(format!("{:?}", CallSiteId::new(9)), "s9");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ValueId::new(1) < ValueId::new(2));
        assert_eq!(BlockId::new(4), BlockId::new(4));
    }
}
