//! A reference interpreter with a cycle cost model.
//!
//! Two jobs:
//!
//! 1. **Semantics oracle** — property tests assert that optimization passes
//!    preserve the observable outcome (return value + final global state).
//! 2. **Performance substrate** — Figure 19 of the paper measures the runtime
//!    impact of size-tuned inlining; we reproduce it with this interpreter's
//!    deterministic cycle counts, which include per-instruction costs, call
//!    overhead, and a small instruction-cache model (the second-order effect
//!    §6 of the paper discusses).

use crate::function::Linkage;
use crate::ids::{FuncId, GlobalId, ValueId};
use crate::inst::{Inst, JumpTarget, Terminator};
use crate::module::Module;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Cycle costs charged by the interpreter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Simple ALU operation.
    pub alu: u64,
    /// Multiplication.
    pub mul: u64,
    /// Division / remainder.
    pub div: u64,
    /// Global load or store.
    pub mem: u64,
    /// Materializing a constant.
    pub konst: u64,
    /// Taken on every call instruction (argument shuffling + call + ret +
    /// prologue/epilogue), the overhead inlining eliminates.
    pub call_overhead: u64,
    /// Conditional branch.
    pub branch: u64,
    /// Unconditional jump.
    pub jump: u64,
    /// Instruction-cache capacity, in instruction-count units. `0` disables
    /// the cache model.
    pub icache_capacity: u64,
    /// Extra cycles per instruction-count unit fetched on an I-cache miss.
    pub icache_miss_per_unit: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 1,
            mul: 3,
            div: 20,
            mem: 4,
            konst: 1,
            call_overhead: 10,
            branch: 2,
            jump: 1,
            icache_capacity: 4096,
            icache_miss_per_unit: 2,
        }
    }
}

impl CostModel {
    /// A cost model with the I-cache disabled (pure instruction counting).
    pub fn without_icache() -> Self {
        CostModel { icache_capacity: 0, icache_miss_per_unit: 0, ..CostModel::default() }
    }
}

/// One observable side effect: a store to a global cell.
///
/// Loads are deliberately *not* events — redundancy elimination legitimately
/// removes them — but every store survives the `-Os` pipeline, so the
/// ordered store sequence is part of a program's observable behaviour and
/// the differential oracle in `optinline-check` compares it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EffectEvent {
    /// The global cell written.
    pub global: GlobalId,
    /// The value stored.
    pub value: i64,
}

/// Result of a successful interpretation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Value returned by the entry function (if any).
    pub ret: Option<i64>,
    /// Final state of every global cell.
    pub globals: Vec<i64>,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Number of executed instructions (terminators included).
    pub steps: u64,
    /// Ordered store events, recorded only when effect tracing is enabled
    /// ([`Interp::with_effect_trace`]); empty otherwise.
    pub effects: Vec<EffectEvent>,
}

impl Outcome {
    /// The observable part of the outcome: return value plus global state.
    /// Passes must preserve this; cycles and steps may change.
    pub fn observable(&self) -> (Option<i64>, &[i64]) {
        (self.ret, &self.globals)
    }
}

/// Interpretation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// The step budget was exhausted (probable non-termination).
    FuelExhausted,
    /// Call depth exceeded the limit.
    StackOverflow,
    /// An `unreachable` terminator was executed.
    UnreachableExecuted(FuncId),
    /// A call to a stubbed-out function was executed.
    CalledStub(FuncId),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::FuelExhausted => write!(f, "interpreter fuel exhausted"),
            InterpError::StackOverflow => write!(f, "interpreter call depth exceeded"),
            InterpError::UnreachableExecuted(func) => {
                write!(f, "executed `unreachable` in {func}")
            }
            InterpError::CalledStub(func) => write!(f, "called stubbed-out function {func}"),
        }
    }
}

impl Error for InterpError {}

/// Interpreter over one module.
#[derive(Debug)]
pub struct Interp<'m> {
    module: &'m Module,
    cost: CostModel,
    globals: Vec<i64>,
    cycles: u64,
    steps: u64,
    fuel: u64,
    max_depth: usize,
    icache: VecDeque<(FuncId, u64)>,
    icache_used: u64,
    func_units: Vec<u64>,
    trace: Option<Vec<EffectEvent>>,
}

impl<'m> Interp<'m> {
    /// Creates an interpreter with the default cost model and a 10M-step
    /// fuel budget.
    pub fn new(module: &'m Module) -> Self {
        Self::with_cost(module, CostModel::default())
    }

    /// Creates an interpreter with an explicit cost model.
    pub fn with_cost(module: &'m Module, cost: CostModel) -> Self {
        let func_units = module.iter_funcs().map(|(_, f)| (f.inst_count() as u64).max(1)).collect();
        Interp {
            module,
            cost,
            globals: module.globals().iter().map(|g| g.init).collect(),
            cycles: 0,
            steps: 0,
            fuel: 10_000_000,
            max_depth: 512,
            icache: VecDeque::new(),
            icache_used: 0,
            func_units,
            trace: None,
        }
    }

    /// Overrides the fuel budget (number of executed steps allowed).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Overrides the call-depth limit.
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Enables effect tracing: the outcome's `effects` records every store
    /// to a global, in execution order.
    pub fn with_effect_trace(mut self) -> Self {
        self.trace = Some(Vec::new());
        self
    }

    /// Runs `func` with `args`, consuming the interpreter.
    ///
    /// # Errors
    ///
    /// See [`InterpError`].
    pub fn run(mut self, func: FuncId, args: &[i64]) -> Result<Outcome, InterpError> {
        self.touch_icache(func);
        let ret = self.call(func, args, 0)?;
        Ok(Outcome {
            ret,
            globals: self.globals,
            cycles: self.cycles,
            steps: self.steps,
            effects: self.trace.unwrap_or_default(),
        })
    }

    fn touch_icache(&mut self, func: FuncId) {
        if self.cost.icache_capacity == 0 {
            return;
        }
        if self.icache.iter().any(|(f, _)| *f == func) {
            return;
        }
        let units = self.func_units[func.index()];
        self.charge(
            units.min(self.cost.icache_capacity).saturating_mul(self.cost.icache_miss_per_unit),
        );
        while self.icache_used + units > self.cost.icache_capacity {
            match self.icache.pop_front() {
                Some((_, u)) => self.icache_used -= u,
                None => break,
            }
        }
        self.icache.push_back((func, units));
        self.icache_used += units;
    }

    /// Accrues cycles saturating at `u64::MAX`: a deep-recursion workload
    /// under an inflated cost model must clamp, never wrap (the same rule
    /// `space_size`/`tree_stats` follow for size accounting).
    fn charge(&mut self, cycles: u64) {
        self.cycles = self.cycles.saturating_add(cycles);
    }

    fn step(&mut self) -> Result<(), InterpError> {
        if self.steps >= self.fuel {
            return Err(InterpError::FuelExhausted);
        }
        self.steps += 1;
        Ok(())
    }

    fn call(
        &mut self,
        fid: FuncId,
        args: &[i64],
        depth: usize,
    ) -> Result<Option<i64>, InterpError> {
        if depth > self.max_depth {
            return Err(InterpError::StackOverflow);
        }
        let func = self.module.func(fid);
        if self.module.is_stub(fid) && func.linkage == Linkage::Internal {
            return Err(InterpError::CalledStub(fid));
        }
        debug_assert_eq!(args.len(), func.param_count(), "arity checked by verifier");
        let mut regs = vec![0i64; func.value_bound() as usize];
        let mut block = func.entry();
        for (&p, &a) in func.params().iter().zip(args) {
            regs[p.index()] = a;
        }
        loop {
            let b = func.block(block);
            for inst in &b.insts {
                self.step()?;
                match inst {
                    Inst::Const { dst, value } => {
                        self.charge(self.cost.konst);
                        regs[dst.index()] = *value;
                    }
                    Inst::Bin { dst, op, lhs, rhs } => {
                        use crate::inst::BinOp;
                        self.charge(match op {
                            BinOp::Mul => self.cost.mul,
                            BinOp::Div | BinOp::Rem => self.cost.div,
                            _ => self.cost.alu,
                        });
                        regs[dst.index()] = op.eval(regs[lhs.index()], regs[rhs.index()]);
                    }
                    Inst::Call { dst, callee, args, .. } => {
                        self.charge(self.cost.call_overhead);
                        self.touch_icache(*callee);
                        let vals: Vec<i64> = args.iter().map(|a| regs[a.index()]).collect();
                        let r = self.call(*callee, &vals, depth + 1)?;
                        if let Some(d) = dst {
                            regs[d.index()] = r.unwrap_or(0);
                        }
                    }
                    Inst::Load { dst, global } => {
                        self.charge(self.cost.mem);
                        regs[dst.index()] = self.globals[global.index()];
                    }
                    Inst::Store { global, src } => {
                        self.charge(self.cost.mem);
                        let value = regs[src.index()];
                        self.globals[global.index()] = value;
                        if let Some(trace) = &mut self.trace {
                            trace.push(EffectEvent { global: *global, value });
                        }
                    }
                }
            }
            self.step()?;
            let apply = |regs: &mut Vec<i64>, t: &JumpTarget, func: &crate::function::Function| {
                let vals: Vec<i64> = t.args.iter().map(|a| regs[a.index()]).collect();
                for (&p, v) in func.block(t.block).params.iter().zip(vals) {
                    regs[p.index()] = v;
                }
                t.block
            };
            match &b.term {
                Terminator::Jump(t) => {
                    self.charge(self.cost.jump);
                    block = apply(&mut regs, t, func);
                }
                Terminator::Branch { cond, then_to, else_to } => {
                    self.charge(self.cost.branch);
                    let t = if regs[cond.index()] != 0 { then_to } else { else_to };
                    block = apply(&mut regs, t, func);
                }
                Terminator::Return(v) => {
                    return Ok(v.map(|v: ValueId| regs[v.index()]));
                }
                Terminator::Unreachable => {
                    return Err(InterpError::UnreachableExecuted(fid));
                }
            }
        }
    }
}

/// Convenience: runs `main` (by name) with default costs. A parameterless
/// `main` runs as-is; a parameterized one receives zeros.
///
/// # Errors
///
/// Returns an error if the module has no `main` or interpretation fails.
pub fn run_main(module: &Module) -> Result<Outcome, Box<dyn Error>> {
    let main = module
        .func_by_name("main")
        .ok_or_else(|| Box::new(InterpError::CalledStub(FuncId::new(0))) as Box<dyn Error>)?;
    let args = vec![0i64; module.func(main).param_count()];
    Ok(Interp::new(module).run(main, &args)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::function::Linkage;
    use crate::inst::BinOp;

    fn arith_module() -> Module {
        let mut m = Module::new("m");
        let g = m.add_global("g", 5);
        let double = m.declare_function("double", 1, Linkage::Internal);
        let main = m.declare_function("main", 0, Linkage::Public);
        {
            let mut b = FuncBuilder::new(&mut m, double);
            let p = b.param(0);
            let r = b.bin(BinOp::Add, p, p);
            b.ret(Some(r));
        }
        {
            let mut b = FuncBuilder::new(&mut m, main);
            let x = b.load(g);
            let y = b.call(double, &[x]).unwrap();
            b.store(g, y);
            b.ret(Some(y));
        }
        m
    }

    #[test]
    fn runs_arithmetic_and_memory() {
        let m = arith_module();
        let out = run_main(&m).unwrap();
        assert_eq!(out.ret, Some(10));
        assert_eq!(out.globals, vec![10]);
        assert!(out.cycles > 0);
        assert!(out.steps > 0);
    }

    #[test]
    fn call_overhead_is_charged() {
        let m = arith_module();
        let main = m.func_by_name("main").unwrap();
        let base =
            Interp::with_cost(&m, CostModel::without_icache()).run(main, &[]).unwrap().cycles;
        let mut expensive = CostModel::without_icache();
        expensive.call_overhead = 1000;
        let costly = Interp::with_cost(&m, expensive).run(main, &[]).unwrap().cycles;
        assert_eq!(costly - base, 1000 - CostModel::default().call_overhead);
    }

    #[test]
    fn branches_select_correct_path() {
        let mut m = Module::new("m");
        let f = m.declare_function("f", 1, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let p = b.param(0);
        let (t, _) = b.new_block(0);
        let (e, _) = b.new_block(0);
        b.branch(p, t, &[], e, &[]);
        b.switch_to(t);
        let one = b.iconst(1);
        b.ret(Some(one));
        b.switch_to(e);
        let zero = b.iconst(0);
        b.ret(Some(zero));
        assert_eq!(Interp::new(&m).run(f, &[5]).unwrap().ret, Some(1));
        assert_eq!(Interp::new(&m).run(f, &[0]).unwrap().ret, Some(0));
    }

    #[test]
    fn loop_counts_to_n() {
        // sum = 0; for i in 0..n { sum += i }
        let mut m = Module::new("m");
        let f = m.declare_function("sum", 1, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let n = b.param(0);
        let zero = b.iconst(0);
        let (hdr, hp) = b.new_block(2); // i, sum
        let (body, _) = b.new_block(0);
        let (exit, _) = b.new_block(0);
        b.jump(hdr, &[zero, zero]);
        let (i, sum) = (hp[0], hp[1]);
        let c = b.bin(BinOp::Lt, i, n);
        b.branch(c, body, &[], exit, &[]);
        b.switch_to(body);
        let sum2 = b.bin(BinOp::Add, sum, i);
        let one = b.iconst(1);
        let i2 = b.bin(BinOp::Add, i, one);
        b.jump(hdr, &[i2, sum2]);
        // After jump cursor is hdr; ret lives in exit.
        b.switch_to(exit);
        b.ret(Some(sum));
        assert_eq!(Interp::new(&m).run(f, &[10]).unwrap().ret, Some(45));
    }

    #[test]
    fn fuel_exhaustion_detected() {
        let mut m = Module::new("m");
        let f = m.declare_function("spin", 0, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let (l, _) = b.new_block(0);
        b.jump(l, &[]);
        b.jump(l, &[]);
        let err = Interp::new(&m).with_fuel(100).run(f, &[]).unwrap_err();
        assert_eq!(err, InterpError::FuelExhausted);
    }

    #[test]
    fn unbounded_recursion_overflows() {
        let mut m = Module::new("m");
        let f = m.declare_function("rec", 0, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let v = b.call(f, &[]).unwrap();
        b.ret(Some(v));
        let err = Interp::new(&m).run(f, &[]).unwrap_err();
        assert_eq!(err, InterpError::StackOverflow);
    }

    #[test]
    fn icache_misses_cost_cycles() {
        let m = arith_module();
        let main = m.func_by_name("main").unwrap();
        let without = Interp::with_cost(&m, CostModel::without_icache()).run(main, &[]).unwrap();
        let with = Interp::new(&m).run(main, &[]).unwrap();
        assert!(with.cycles > without.cycles);
        assert_eq!(with.observable(), without.observable());
    }

    /// Builds `chain0 → chain1 → … → chain{n-1}` where only the last link
    /// does any arithmetic; used to pin down depth-limit boundaries.
    fn call_chain(n: usize) -> (Module, FuncId) {
        assert!(n >= 1);
        let mut m = Module::new("chain");
        let ids: Vec<FuncId> = (0..n)
            .map(|i| {
                let linkage = if i == 0 { Linkage::Public } else { Linkage::Internal };
                m.declare_function(format!("chain{i}"), 0, linkage)
            })
            .collect();
        for (i, &fid) in ids.iter().enumerate() {
            let mut b = FuncBuilder::new(&mut m, fid);
            if i + 1 < n {
                let v = b.call(ids[i + 1], &[]).unwrap();
                b.ret(Some(v));
            } else {
                let c = b.iconst(7);
                b.ret(Some(c));
            }
        }
        (m, ids[0])
    }

    #[test]
    fn fuel_exhaustion_mid_call_unwinds_as_a_trap() {
        // Each frame costs 2 steps (call inst + return terminator); budget
        // the fuel so it runs out inside a nested call, not at the top.
        let (m, entry) = call_chain(8);
        let err = Interp::new(&m).with_fuel(5).run(entry, &[]).unwrap_err();
        assert_eq!(err, InterpError::FuelExhausted);
        // One more unit of fuel still traps: still mid-call.
        let err = Interp::new(&m).with_fuel(6).run(entry, &[]).unwrap_err();
        assert_eq!(err, InterpError::FuelExhausted);
        // With enough fuel the same program completes normally.
        assert_eq!(Interp::new(&m).run(entry, &[]).unwrap().ret, Some(7));
    }

    #[test]
    fn stack_overflow_triggers_exactly_past_the_depth_limit() {
        // depth counts nested calls: the entry runs at depth 0, so a chain
        // of k functions reaches depth k-1. max_depth = d admits depth d
        // and rejects depth d+1 — pin the boundary on both sides.
        let d = 5;
        let (ok_m, ok_entry) = call_chain(d + 1); // deepest frame at depth d
        let out = Interp::new(&ok_m).with_max_depth(d).run(ok_entry, &[]).unwrap();
        assert_eq!(out.ret, Some(7));
        let (over_m, over_entry) = call_chain(d + 2); // depth d+1: one too deep
        let err = Interp::new(&over_m).with_max_depth(d).run(over_entry, &[]).unwrap_err();
        assert_eq!(err, InterpError::StackOverflow);
    }

    #[test]
    fn calling_a_stubbed_function_is_a_distinct_trap_kind() {
        // Simulate dead-function elimination leaving a stub behind while a
        // (buggy or hand-edited) caller still targets it: the interpreter
        // must surface `CalledStub`, not a generic `UnreachableExecuted`.
        let mut m = Module::new("m");
        let stubbed = m.declare_function("gone", 0, Linkage::Internal);
        let main = m.declare_function("main", 0, Linkage::Public);
        {
            let mut b = FuncBuilder::new(&mut m, stubbed);
            let c = b.iconst(3);
            b.ret(Some(c));
        }
        {
            let mut b = FuncBuilder::new(&mut m, main);
            let v = b.call(stubbed, &[]).unwrap();
            b.ret(Some(v));
        }
        m.stub_out(&[stubbed].into_iter().collect());
        let err = run_main(&m).unwrap_err();
        let interp_err = err.downcast_ref::<InterpError>().expect("InterpError");
        assert_eq!(*interp_err, InterpError::CalledStub(stubbed));
        assert_ne!(*interp_err, InterpError::UnreachableExecuted(stubbed));
        assert!(interp_err.to_string().contains("stub"));
    }

    #[test]
    fn cycle_accumulation_saturates_instead_of_wrapping() {
        // A deep call chain under a near-MAX per-call cost overflows u64
        // within a handful of frames; the counter must clamp at MAX the
        // way space_size/tree_stats clamp size sums, never wrap to a tiny
        // total that would look like a fast program.
        let (m, entry) = call_chain(64);
        let mut cost = CostModel::without_icache();
        cost.call_overhead = u64::MAX / 2;
        let out = Interp::with_cost(&m, cost).run(entry, &[]).unwrap();
        assert_eq!(out.cycles, u64::MAX);
        assert_eq!(out.ret, Some(7), "saturation must not disturb semantics");

        // The icache path saturates too: a huge per-unit miss cost times
        // the touched units must clamp rather than overflow the multiply.
        let (m2, entry2) = call_chain(8);
        let icost = CostModel { icache_miss_per_unit: u64::MAX, ..CostModel::default() };
        let out2 = Interp::with_cost(&m2, icost).run(entry2, &[]).unwrap();
        assert_eq!(out2.cycles, u64::MAX);
        assert_eq!(out2.ret, Some(7));
    }

    #[test]
    fn effect_trace_records_stores_in_order() {
        let mut m = Module::new("m");
        let g0 = m.add_global("g0", 0);
        let g1 = m.add_global("g1", 0);
        let f = m.declare_function("main", 0, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let a = b.iconst(4);
        b.store(g1, a);
        let c = b.iconst(9);
        b.store(g0, c);
        b.store(g1, c);
        b.ret(None);
        let main = m.func_by_name("main").unwrap();
        let traced = Interp::new(&m).with_effect_trace().run(main, &[]).unwrap();
        assert_eq!(
            traced.effects,
            vec![
                EffectEvent { global: g1, value: 4 },
                EffectEvent { global: g0, value: 9 },
                EffectEvent { global: g1, value: 9 },
            ]
        );
        // Tracing is opt-in: the default interpreter records nothing.
        let untraced = Interp::new(&m).run(main, &[]).unwrap();
        assert!(untraced.effects.is_empty());
        assert_eq!(traced.observable(), untraced.observable());
    }

    #[test]
    fn executing_unreachable_is_an_error() {
        let mut m = Module::new("m");
        let f = m.declare_function("f", 0, Linkage::Public);
        let err = Interp::new(&m).run(f, &[]).unwrap_err();
        assert_eq!(err, InterpError::UnreachableExecuted(f));
        assert!(err.to_string().contains("unreachable"));
    }
}
