//! Textual printing of modules, functions, and instructions.
//!
//! The format round-trips through [`crate::parse::parse_module`]:
//!
//! ```text
//! module "demo" {
//!   global @counter = 0
//!   internal fn double {
//!   b0(v0):
//!     v1 = add v0, v0
//!     ret v1
//!   }
//!   public fn main {
//!   b0():
//!     v0 = const 21
//!     v1 = call double(v0) site s0
//!     ret v1
//!   }
//! }
//! ```

use crate::function::{Function, Linkage};
use crate::ids::FuncId;
use crate::inst::{Inst, JumpTarget, Terminator};
use crate::module::Module;
use std::fmt;

fn write_target(f: &mut fmt::Formatter<'_>, t: &JumpTarget) -> fmt::Result {
    write!(f, "{}(", t.block)?;
    for (i, a) in t.args.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{a}")?;
    }
    write!(f, ")")
}

/// Adapter that prints one instruction with module context (function and
/// global names).
#[derive(Debug)]
pub struct InstDisplay<'a> {
    module: &'a Module,
    inst: &'a Inst,
}

impl fmt::Display for InstDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inst {
            Inst::Const { dst, value } => write!(f, "{dst} = const {value}"),
            Inst::Bin { dst, op, lhs, rhs } => write!(f, "{dst} = {op} {lhs}, {rhs}"),
            Inst::Call { dst, callee, args, site, inline_path } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                write!(f, "call {}(", self.module.func(*callee).name)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ") site {site}")?;
                if !inline_path.is_empty() {
                    write!(f, " path [")?;
                    for (i, p) in inline_path.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{}", self.module.func(*p).name)?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
            Inst::Load { dst, global } => {
                write!(f, "{dst} = load @{}", self.module.globals()[global.index()].name)
            }
            Inst::Store { global, src } => {
                write!(f, "store @{}, {src}", self.module.globals()[global.index()].name)
            }
        }
    }
}

/// Adapter that prints one function with module context.
#[derive(Debug)]
pub struct FuncDisplay<'a> {
    module: &'a Module,
    func: &'a Function,
}

impl fmt::Display for FuncDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let linkage = match self.func.linkage {
            Linkage::Public => "public",
            Linkage::Internal => "internal",
        };
        write!(f, "  {linkage} fn {}", self.func.name)?;
        if !self.func.inlinable {
            write!(f, " noinline")?;
        }
        writeln!(f, " {{")?;
        for (id, block) in self.func.iter_blocks() {
            write!(f, "  {id}(")?;
            for (i, p) in block.params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}")?;
            }
            writeln!(f, "):")?;
            for inst in &block.insts {
                writeln!(f, "    {}", InstDisplay { module: self.module, inst })?;
            }
            write!(f, "    ")?;
            match &block.term {
                Terminator::Jump(t) => {
                    write!(f, "jump ")?;
                    write_target(f, t)?;
                }
                Terminator::Branch { cond, then_to, else_to } => {
                    write!(f, "br {cond}, ")?;
                    write_target(f, then_to)?;
                    write!(f, ", ")?;
                    write_target(f, else_to)?;
                }
                Terminator::Return(Some(v)) => write!(f, "ret {v}")?,
                Terminator::Return(None) => write!(f, "ret")?,
                Terminator::Unreachable => write!(f, "unreachable")?,
            }
            writeln!(f)?;
        }
        writeln!(f, "  }}")
    }
}

impl Module {
    /// Returns a [`Display`](fmt::Display) adapter for one instruction.
    pub fn display_inst<'a>(&'a self, inst: &'a Inst) -> InstDisplay<'a> {
        InstDisplay { module: self, inst }
    }

    /// Returns a [`Display`](fmt::Display) adapter for one function.
    pub fn display_func(&self, id: FuncId) -> FuncDisplay<'_> {
        FuncDisplay { module: self, func: self.func(id) }
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module \"{}\" {{", self.name)?;
        for g in self.globals() {
            writeln!(f, "  global @{} = {}", g.name, g.init)?;
        }
        for (id, _) in self.iter_funcs() {
            write!(f, "{}", self.display_func(id))?;
        }
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FuncBuilder;
    use crate::function::Linkage;
    use crate::inst::BinOp;
    use crate::module::Module;

    fn sample() -> Module {
        let mut m = Module::new("demo");
        let g = m.add_global("counter", 0);
        let double = m.declare_function("double", 1, Linkage::Internal);
        let main = m.declare_function("main", 0, Linkage::Public);
        {
            let mut b = FuncBuilder::new(&mut m, double);
            let p = b.param(0);
            let r = b.bin(BinOp::Add, p, p);
            b.ret(Some(r));
        }
        {
            let mut b = FuncBuilder::new(&mut m, main);
            let x = b.iconst(21);
            let y = b.call(double, &[x]).unwrap();
            b.store(g, y);
            b.ret(Some(y));
        }
        m
    }

    #[test]
    fn module_prints_expected_shape() {
        let text = sample().to_string();
        assert!(text.contains("module \"demo\" {"));
        assert!(text.contains("global @counter = 0"));
        assert!(text.contains("internal fn double {"));
        assert!(text.contains("public fn main {"));
        assert!(text.contains("v1 = add v0, v0"));
        assert!(text.contains("v1 = call double(v0) site s0"));
        assert!(text.contains("store @counter, v1"));
        assert!(text.contains("ret v1"));
    }

    #[test]
    fn noinline_flag_is_printed() {
        let mut m = sample();
        let double = m.func_by_name("double").unwrap();
        m.func_mut(double).inlinable = false;
        assert!(m.to_string().contains("internal fn double noinline {"));
    }

    #[test]
    fn branch_terminators_print_targets() {
        let mut m = Module::new("m");
        let f = m.declare_function("f", 1, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let p = b.param(0);
        let (t, _) = b.new_block(0);
        let (e, params) = b.new_block(1);
        b.branch(p, t, &[], e, &[p]);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(Some(params[0]));
        let text = m.to_string();
        assert!(text.contains("br v0, b1(), b2(v0)"));
    }
}
