//! Modules: the translation-unit analogue on which all experiments operate.

use crate::function::{Function, Linkage};
use crate::ids::{CallSiteId, FuncId, GlobalId};
use crate::inst::Inst;
use std::collections::BTreeSet;

/// A mutable global cell of type `i64`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Global {
    /// Name (unique within the module).
    pub name: String,
    /// Initial value.
    pub init: i64,
}

/// A module: functions plus global cells, the unit of compilation.
///
/// Modules mint [`CallSiteId`]s: every source-level call gets a fresh id via
/// [`Module::new_call_site`], and inliner-produced copies keep the original
/// id so that one decision covers all copies (§2 of the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Module {
    /// Module name (used in reports).
    pub name: String,
    functions: Vec<Function>,
    globals: Vec<Global>,
    next_call_site: u32,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module { name: name.into(), functions: Vec::new(), globals: Vec::new(), next_call_site: 0 }
    }

    /// Declares a function and returns its id. The body starts as a single
    /// empty entry block terminated by `unreachable`.
    pub fn declare_function(
        &mut self,
        name: impl Into<String>,
        n_params: usize,
        linkage: Linkage,
    ) -> FuncId {
        let id = FuncId::new(self.functions.len() as u32);
        self.functions.push(Function::new(name, n_params, linkage));
        id
    }

    /// Adds a global cell and returns its id.
    pub fn add_global(&mut self, name: impl Into<String>, init: i64) -> GlobalId {
        let id = GlobalId::new(self.globals.len() as u32);
        self.globals.push(Global { name: name.into(), init });
        id
    }

    /// Declares an *external* function: a body-less, non-inlinable, public
    /// symbol — the IR analogue of a C `extern` prototype. Calls to it are
    /// not inlining candidates in this module; the linker resolves it to a
    /// same-named definition from another module (see
    /// [`link_modules`](crate::link::link_modules)).
    pub fn declare_extern(&mut self, name: impl Into<String>, n_params: usize) -> FuncId {
        let id = self.declare_function(name, n_params, Linkage::Public);
        self.functions[id.index()].inlinable = false;
        id
    }

    /// Returns `true` if the function is an external declaration (public,
    /// non-inlinable, body-less).
    pub fn is_extern_decl(&self, id: FuncId) -> bool {
        let f = self.func(id);
        f.linkage == Linkage::Public && !f.inlinable && self.is_stub(id)
    }

    /// Mints a fresh call-site id.
    pub fn new_call_site(&mut self) -> CallSiteId {
        let id = CallSiteId::new(self.next_call_site);
        self.next_call_site += 1;
        id
    }

    /// Exclusive upper bound on call-site ids minted so far.
    pub fn call_site_bound(&self) -> u32 {
        self.next_call_site
    }

    /// Bumps the call-site id counter to at least `bound` (parser support).
    pub fn reserve_call_sites(&mut self, bound: u32) {
        self.next_call_site = self.next_call_site.max(bound);
    }

    /// Returns a shared reference to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Returns an exclusive reference to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Number of functions (including any that were emptied by DCE).
    pub fn func_count(&self) -> usize {
        self.functions.len()
    }

    /// Iterates over `(FuncId, &Function)` pairs.
    pub fn iter_funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions.iter().enumerate().map(|(i, f)| (FuncId::new(i as u32), f))
    }

    /// All function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + 'static {
        (0..self.functions.len() as u32).map(FuncId::new)
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.iter_funcs().find(|(_, f)| f.name == name).map(|(id, _)| id)
    }

    /// Returns the module's globals.
    pub fn globals(&self) -> &[Global] {
        &self.globals
    }

    /// Returns an exclusive reference to the globals.
    pub fn globals_mut(&mut self) -> &mut Vec<Global> {
        &mut self.globals
    }

    /// The set of *distinct* call-site ids currently present in the module
    /// whose callee is inlinable (body available and not opted out). These
    /// are the inlining candidates of §2.
    pub fn inlinable_sites(&self) -> BTreeSet<CallSiteId> {
        let mut out = BTreeSet::new();
        for f in &self.functions {
            for b in &f.blocks {
                for i in &b.insts {
                    if let Inst::Call { site, callee, .. } = i {
                        if self.functions[callee.index()].inlinable {
                            out.insert(*site);
                        }
                    }
                }
            }
        }
        out
    }

    /// Total instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(|f| f.inst_count()).sum()
    }

    /// Removes the bodies of the given functions, leaving unreachable stubs.
    ///
    /// Dead-function elimination uses this instead of reindexing, so that
    /// `FuncId`s stay stable. Stubbed functions have zero size in codegen.
    pub fn stub_out(&mut self, dead: &BTreeSet<FuncId>) {
        for id in dead {
            let f = &mut self.functions[id.index()];
            let n = f.param_count();
            *f = Function::new(f.name.clone(), n, f.linkage);
            f.inlinable = false;
        }
    }

    /// Returns `true` if the function is a stub (sole entry block, no
    /// instructions, `unreachable` terminator) left behind by [`stub_out`].
    ///
    /// [`stub_out`]: Module::stub_out
    pub fn is_stub(&self, id: FuncId) -> bool {
        let f = self.func(id);
        f.blocks.len() == 1
            && f.blocks[0].insts.is_empty()
            && matches!(f.blocks[0].term, crate::inst::Terminator::Unreachable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Terminator;

    #[test]
    fn declare_and_lookup_functions() {
        let mut m = Module::new("m");
        let a = m.declare_function("a", 0, Linkage::Public);
        let b = m.declare_function("b", 2, Linkage::Internal);
        assert_eq!(m.func_count(), 2);
        assert_eq!(m.func_by_name("b"), Some(b));
        assert_eq!(m.func_by_name("zzz"), None);
        assert_eq!(m.func(a).name, "a");
        assert_eq!(m.func(b).param_count(), 2);
    }

    #[test]
    fn call_sites_are_minted_densely() {
        let mut m = Module::new("m");
        assert_eq!(m.new_call_site(), CallSiteId::new(0));
        assert_eq!(m.new_call_site(), CallSiteId::new(1));
        assert_eq!(m.call_site_bound(), 2);
        m.reserve_call_sites(5);
        assert_eq!(m.new_call_site(), CallSiteId::new(5));
    }

    #[test]
    fn inlinable_sites_respects_callee_flag() {
        let mut m = Module::new("m");
        let a = m.declare_function("a", 0, Linkage::Public);
        let b = m.declare_function("b", 0, Linkage::Internal);
        let c = m.declare_function("c", 0, Linkage::Internal);
        m.func_mut(c).inlinable = false;
        let s0 = m.new_call_site();
        let s1 = m.new_call_site();
        let entry = m.func(a).entry();
        m.func_mut(a).blocks[entry.index()].insts.extend([
            Inst::Call { dst: None, callee: b, args: vec![], site: s0, inline_path: vec![] },
            Inst::Call { dst: None, callee: c, args: vec![], site: s1, inline_path: vec![] },
        ]);
        m.func_mut(a).blocks[entry.index()].term = Terminator::Return(None);
        let sites = m.inlinable_sites();
        assert!(sites.contains(&s0));
        assert!(!sites.contains(&s1));
    }

    #[test]
    fn stub_out_leaves_empty_function() {
        let mut m = Module::new("m");
        let a = m.declare_function("a", 1, Linkage::Internal);
        let v = m.func_mut(a).new_value();
        m.func_mut(a).blocks[0].insts.push(Inst::Const { dst: v, value: 1 });
        let dead: BTreeSet<_> = [a].into_iter().collect();
        m.stub_out(&dead);
        assert!(m.is_stub(a));
        assert_eq!(m.func(a).param_count(), 1);
        assert!(!m.func(a).inlinable);
    }

    #[test]
    fn globals_round_trip() {
        let mut m = Module::new("m");
        let g = m.add_global("counter", 42);
        assert_eq!(g, GlobalId::new(0));
        assert_eq!(m.globals()[0].init, 42);
        m.globals_mut()[0].init = 7;
        assert_eq!(m.globals()[0].init, 7);
    }
}
