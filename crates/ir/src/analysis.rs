//! Intra- and inter-procedural analyses shared by the optimizer, verifier,
//! and code generator: CFG reachability, predecessors, dominators, effect
//! summaries, and reachable-function computation.

use crate::function::Function;
use crate::ids::{BlockId, FuncId, ValueId};
use crate::inst::{Inst, Terminator};
use crate::module::Module;
use std::collections::BTreeSet;

/// Returns the set of blocks reachable from the entry block.
pub fn reachable_blocks(func: &Function) -> Vec<bool> {
    let mut seen = vec![false; func.blocks.len()];
    let mut stack = vec![func.entry()];
    seen[0] = true;
    while let Some(b) = stack.pop() {
        for s in func.block(b).term.successors() {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Returns, for each block, the list of predecessor blocks (with
/// multiplicity: a two-way branch to the same block contributes twice).
pub fn predecessors(func: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); func.blocks.len()];
    for (id, block) in func.iter_blocks() {
        for s in block.term.successors() {
            preds[s.index()].push(id);
        }
    }
    preds
}

/// Immediate dominators, computed with the Cooper–Harvey–Kennedy iterative
/// algorithm over a reverse-postorder numbering.
///
/// Entry dominates itself. Unreachable blocks get `None`.
pub fn immediate_dominators(func: &Function) -> Vec<Option<BlockId>> {
    let n = func.blocks.len();
    // Reverse postorder.
    let mut order = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    let mut stack: Vec<(BlockId, usize)> = vec![(func.entry(), 0)];
    state[0] = 1;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = func.block(b).term.successors();
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if state[s.index()] == 0 {
                state[s.index()] = 1;
                stack.push((s, 0));
            }
        } else {
            state[b.index()] = 2;
            order.push(b);
            stack.pop();
        }
    }
    order.reverse();
    let mut rpo_num = vec![usize::MAX; n];
    for (i, b) in order.iter().enumerate() {
        rpo_num[b.index()] = i;
    }

    let preds = predecessors(func);
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    idom[0] = Some(func.entry());
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.index()] {
                if idom[p.index()].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &rpo_num, p, cur),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.index()] != Some(ni) {
                    idom[b.index()] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_num: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_num[a.index()] > rpo_num[b.index()] {
            a = idom[a.index()].expect("processed block must have idom");
        }
        while rpo_num[b.index()] > rpo_num[a.index()] {
            b = idom[b.index()].expect("processed block must have idom");
        }
    }
    a
}

/// Returns `true` if block `a` dominates block `b` (both reachable).
pub fn dominates(idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.index()] {
            Some(d) if d != cur => cur = d,
            _ => return cur == a,
        }
    }
}

/// Per-function effect summary: whether calling the function can observably
/// read or write memory (transitively through callees).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EffectSummary {
    writes: Vec<bool>,
    reads: Vec<bool>,
}

impl EffectSummary {
    /// Computes effect summaries for every function in the module by a
    /// fixpoint over direct effects and call edges. Stubs are effect-free.
    pub fn compute(module: &Module) -> Self {
        let n = module.func_count();
        let mut writes = vec![false; n];
        let mut reads = vec![false; n];
        for (id, f) in module.iter_funcs() {
            for b in &f.blocks {
                for i in &b.insts {
                    match i {
                        Inst::Store { .. } => writes[id.index()] = true,
                        Inst::Load { .. } => reads[id.index()] = true,
                        _ => {}
                    }
                }
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for (id, f) in module.iter_funcs() {
                for b in &f.blocks {
                    for i in &b.insts {
                        if let Inst::Call { callee, .. } = i {
                            if writes[callee.index()] && !writes[id.index()] {
                                writes[id.index()] = true;
                                changed = true;
                            }
                            if reads[callee.index()] && !reads[id.index()] {
                                reads[id.index()] = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        EffectSummary { writes, reads }
    }

    /// Whether the function may write a global (transitively).
    pub fn may_write(&self, f: FuncId) -> bool {
        self.writes[f.index()]
    }

    /// Whether the function may read a global (transitively).
    pub fn may_read(&self, f: FuncId) -> bool {
        self.reads[f.index()]
    }

    /// A call to `f` whose result is unused is removable exactly when `f`
    /// writes nothing. (Reads are safe to drop; the IR has no traps, and
    /// workloads are terminating by construction — see crate docs.)
    pub fn call_removable(&self, f: FuncId) -> bool {
        !self.writes[f.index()]
    }
}

/// Functions reachable (via calls) from the module's public functions.
///
/// This is the liveness used by dead-function elimination and by codegen's
/// size accounting.
pub fn reachable_functions(module: &Module) -> BTreeSet<FuncId> {
    let mut live = BTreeSet::new();
    let mut stack = Vec::new();
    for (id, f) in module.iter_funcs() {
        if matches!(f.linkage, crate::function::Linkage::Public) {
            live.insert(id);
            stack.push(id);
        }
    }
    while let Some(f) = stack.pop() {
        for (_, callee) in module.func(f).call_edges() {
            if live.insert(callee) {
                stack.push(callee);
            }
        }
    }
    live
}

/// Counts uses of every value in a function (dense by value id).
pub fn use_counts(func: &Function) -> Vec<u32> {
    let mut counts = vec![0u32; func.value_bound() as usize];
    let mut bump = |v: ValueId| {
        if (v.index()) < counts.len() {
            counts[v.index()] += 1;
        }
    };
    for b in &func.blocks {
        for i in &b.insts {
            i.for_each_use(&mut bump);
        }
        b.term.for_each_use(&mut bump);
    }
    counts
}

/// Returns `true` if the function contains no loops (its reachable CFG is a
/// DAG). Used by workload validation and size heuristics.
pub fn is_acyclic(func: &Function) -> bool {
    let n = func.blocks.len();
    let mut state = vec![0u8; n];
    fn dfs(func: &Function, b: BlockId, state: &mut [u8]) -> bool {
        state[b.index()] = 1;
        for s in func.block(b).term.successors() {
            let seen = state[s.index()];
            if seen == 1 || (seen == 0 && !dfs(func, s, state)) {
                return false;
            }
        }
        state[b.index()] = 2;
        true
    }
    dfs(func, func.entry(), &mut state)
}

/// Terminator kind statistics for a function — handy for tests and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TermStats {
    /// Number of unconditional jumps.
    pub jumps: usize,
    /// Number of conditional branches.
    pub branches: usize,
    /// Number of returns.
    pub returns: usize,
    /// Number of unreachable terminators.
    pub unreachable: usize,
}

/// Computes [`TermStats`] over all blocks of a function.
pub fn term_stats(func: &Function) -> TermStats {
    let mut s = TermStats::default();
    for b in &func.blocks {
        match b.term {
            Terminator::Jump(_) => s.jumps += 1,
            Terminator::Branch { .. } => s.branches += 1,
            Terminator::Return(_) => s.returns += 1,
            Terminator::Unreachable => s.unreachable += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::function::Linkage;

    fn diamond() -> (Module, FuncId) {
        let mut m = Module::new("m");
        let f = m.declare_function("f", 1, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let p = b.param(0);
        let (t, _) = b.new_block(0);
        let (e, _) = b.new_block(0);
        let (j, jp) = b.new_block(1);
        b.branch(p, t, &[], e, &[]);
        b.switch_to(t);
        let c1 = b.iconst(1);
        b.jump(j, &[c1]);
        b.switch_to(e);
        let c2 = b.iconst(2);
        b.jump(j, &[c2]);
        b.switch_to(j);
        b.ret(Some(jp[0]));
        (m, f)
    }

    #[test]
    fn reachability_finds_all_diamond_blocks() {
        let (m, f) = diamond();
        assert_eq!(reachable_blocks(m.func(f)), vec![true; 4]);
    }

    #[test]
    fn unreachable_block_is_detected() {
        let mut m = Module::new("m");
        let f = m.declare_function("f", 0, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let (dead, _) = b.new_block(0);
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let seen = reachable_blocks(m.func(f));
        assert_eq!(seen, vec![true, false]);
    }

    #[test]
    fn predecessors_of_diamond_join() {
        let (m, f) = diamond();
        let preds = predecessors(m.func(f));
        assert_eq!(preds[3].len(), 2);
        assert_eq!(preds[0].len(), 0);
    }

    #[test]
    fn dominators_of_diamond() {
        let (m, f) = diamond();
        let idom = immediate_dominators(m.func(f));
        let b0 = BlockId::new(0);
        assert_eq!(idom[0], Some(b0));
        assert_eq!(idom[1], Some(b0));
        assert_eq!(idom[2], Some(b0));
        assert_eq!(idom[3], Some(b0));
        assert!(dominates(&idom, b0, BlockId::new(3)));
        assert!(!dominates(&idom, BlockId::new(1), BlockId::new(3)));
    }

    #[test]
    fn effects_propagate_through_calls() {
        let mut m = Module::new("m");
        let g = m.add_global("g", 0);
        let writer = m.declare_function("writer", 0, Linkage::Internal);
        let caller = m.declare_function("caller", 0, Linkage::Internal);
        let pure = m.declare_function("pure", 0, Linkage::Internal);
        {
            let mut b = FuncBuilder::new(&mut m, writer);
            let c = b.iconst(1);
            b.store(g, c);
            b.ret(None);
        }
        {
            let mut b = FuncBuilder::new(&mut m, caller);
            b.call_void(writer, &[]);
            b.ret(None);
        }
        {
            let mut b = FuncBuilder::new(&mut m, pure);
            let c = b.iconst(1);
            b.ret(Some(c));
        }
        let eff = EffectSummary::compute(&m);
        assert!(eff.may_write(writer));
        assert!(eff.may_write(caller));
        assert!(!eff.may_write(pure));
        assert!(eff.call_removable(pure));
        assert!(!eff.call_removable(caller));
    }

    #[test]
    fn reachable_functions_from_public_roots() {
        let mut m = Module::new("m");
        let a = m.declare_function("a", 0, Linkage::Public);
        let b_ = m.declare_function("b", 0, Linkage::Internal);
        let dead = m.declare_function("dead", 0, Linkage::Internal);
        {
            let mut b = FuncBuilder::new(&mut m, a);
            b.call_void(b_, &[]);
            b.ret(None);
        }
        {
            let mut b = FuncBuilder::new(&mut m, b_);
            b.ret(None);
        }
        {
            let mut b = FuncBuilder::new(&mut m, dead);
            b.ret(None);
        }
        let live = reachable_functions(&m);
        assert!(live.contains(&a));
        assert!(live.contains(&b_));
        assert!(!live.contains(&dead));
    }

    #[test]
    fn use_counts_count_terminator_uses() {
        let (m, f) = diamond();
        let counts = use_counts(m.func(f));
        // Param v0 used once (branch cond); consts used once each (jump args).
        assert_eq!(counts[0], 1);
    }

    #[test]
    fn acyclic_detects_loops() {
        let (m, f) = diamond();
        assert!(is_acyclic(m.func(f)));
        let mut m2 = Module::new("m2");
        let g = m2.declare_function("g", 0, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m2, g);
        let (hdr, _) = b.new_block(0);
        b.jump(hdr, &[]);
        // hdr jumps to itself: a loop.
        b.jump(hdr, &[]);
        assert!(!is_acyclic(m2.func(g)));
    }

    #[test]
    fn term_stats_counts_kinds() {
        let (m, f) = diamond();
        let s = term_stats(m.func(f));
        assert_eq!(s, TermStats { jumps: 2, branches: 1, returns: 1, unreachable: 0 });
    }
}
