//! Parsing the textual IR format produced by the printer.
//!
//! [`parse_module`] accepts exactly the syntax emitted by the
//! [`Display`](std::fmt::Display) impl on [`Module`], making the pair a
//! round-trip (tested by property tests in the workspace).

use crate::function::Linkage;
use crate::ids::{BlockId, CallSiteId, FuncId, GlobalId, ValueId};
use crate::inst::{BinOp, Inst, JumpTarget, Terminator};
use crate::module::Module;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced when parsing textual IR fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Punct(char),
}

struct Lexer {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') | None => {
                            return Err(ParseError {
                                line,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(c) => s.push(c),
                    }
                }
                toks.push((Tok::Str(s), line));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push((Tok::Ident(s), line));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let negative = c == '-';
                let mut s = String::new();
                s.push(c);
                chars.next();
                if negative && !chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                    return Err(ParseError { line, message: "expected digit after '-'".into() });
                }
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v = s.parse::<i64>().map_err(|_| ParseError {
                    line,
                    message: format!("integer literal out of range: {s}"),
                })?;
                toks.push((Tok::Int(v), line));
            }
            '{' | '}' | '(' | ')' | '[' | ']' | ',' | ':' | '=' | '@' => {
                toks.push((Tok::Punct(c), line));
                chars.next();
            }
            other => {
                return Err(ParseError { line, message: format!("unexpected character {other:?}") })
            }
        }
    }
    Ok(toks)
}

impl Lexer {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks.get(self.pos).or_else(|| self.toks.last()).map(|(_, l)| *l).unwrap_or(1)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line(), message: message.into() }
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .map(|(t, _)| t.clone())
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next()? {
            Tok::Punct(p) if p == c => Ok(()),
            other => Err(self.err(format!("expected {c:?}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let line = self.line();
        match self.next()? {
            Tok::Ident(s) if s == kw => Ok(()),
            other => Err(ParseError { line, message: format!("expected `{kw}`, found {other:?}") }),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.next()? {
            Tok::Int(v) => Ok(v),
            other => Err(self.err(format!("expected integer, found {other:?}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

fn parse_prefixed_id(lex: &Lexer, s: &str, prefix: char) -> Result<u32, ParseError> {
    let rest = s
        .strip_prefix(prefix)
        .ok_or_else(|| lex.err(format!("expected `{prefix}N` identifier, found `{s}`")))?;
    rest.parse::<u32>()
        .map_err(|_| lex.err(format!("expected `{prefix}N` identifier, found `{s}`")))
}

fn parse_value(lex: &mut Lexer) -> Result<ValueId, ParseError> {
    let s = lex.expect_ident()?;
    Ok(ValueId::new(parse_prefixed_id(lex, &s, 'v')?))
}

fn parse_value_list(lex: &mut Lexer) -> Result<Vec<ValueId>, ParseError> {
    lex.expect_punct('(')?;
    let mut vals = Vec::new();
    if matches!(lex.peek(), Some(Tok::Punct(')'))) {
        lex.next()?;
        return Ok(vals);
    }
    loop {
        vals.push(parse_value(lex)?);
        match lex.next()? {
            Tok::Punct(',') => {}
            Tok::Punct(')') => break,
            other => return Err(lex.err(format!("expected `,` or `)`, found {other:?}"))),
        }
    }
    Ok(vals)
}

fn parse_target(lex: &mut Lexer) -> Result<JumpTarget, ParseError> {
    let s = lex.expect_ident()?;
    let block = BlockId::new(parse_prefixed_id(lex, &s, 'b')?);
    let args = parse_value_list(lex)?;
    Ok(JumpTarget { block, args })
}

struct FnContext<'a> {
    funcs_by_name: &'a HashMap<String, FuncId>,
    globals_by_name: &'a HashMap<String, GlobalId>,
}

fn parse_call_tail(
    lex: &mut Lexer,
    ctx: &FnContext<'_>,
    dst: Option<ValueId>,
) -> Result<Inst, ParseError> {
    let callee_name = lex.expect_ident()?;
    let callee = *ctx
        .funcs_by_name
        .get(&callee_name)
        .ok_or_else(|| lex.err(format!("unknown function `{callee_name}`")))?;
    let args = parse_value_list(lex)?;
    lex.expect_keyword("site")?;
    let s = lex.expect_ident()?;
    let site = CallSiteId::new(parse_prefixed_id(lex, &s, 's')?);
    let mut inline_path = Vec::new();
    if lex.eat_keyword("path") {
        lex.expect_punct('[')?;
        while !matches!(lex.peek(), Some(Tok::Punct(']'))) {
            let name = lex.expect_ident()?;
            let f = *ctx
                .funcs_by_name
                .get(&name)
                .ok_or_else(|| lex.err(format!("unknown function `{name}` in path")))?;
            inline_path.push(f);
        }
        lex.expect_punct(']')?;
    }
    Ok(Inst::Call { dst, callee, args, site, inline_path })
}

fn parse_global_ref(lex: &mut Lexer, ctx: &FnContext<'_>) -> Result<GlobalId, ParseError> {
    lex.expect_punct('@')?;
    let name = lex.expect_ident()?;
    ctx.globals_by_name
        .get(&name)
        .copied()
        .ok_or_else(|| lex.err(format!("unknown global `@{name}`")))
}

/// Parses a module from its textual representation.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the offending line when the input is
/// not valid textual IR. The parser checks syntax and name resolution only;
/// run [`crate::verify::verify_module`] for semantic checks.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let toks = lex(src)?;
    let mut lex = Lexer { toks, pos: 0 };
    lex.expect_keyword("module")?;
    let name = match lex.next()? {
        Tok::Str(s) => s,
        other => return Err(lex.err(format!("expected module name string, found {other:?}"))),
    };
    lex.expect_punct('{')?;

    // Pre-scan: collect function names in declaration order so call
    // instructions can reference functions defined later in the file.
    let mut funcs_by_name: HashMap<String, FuncId> = HashMap::new();
    let mut decl_order: Vec<(String, Linkage, bool)> = Vec::new();
    {
        let mut i = lex.pos;
        while i < lex.toks.len() {
            if let (Tok::Ident(kw), line) = &lex.toks[i] {
                if kw == "fn" {
                    if i == 0 {
                        return Err(ParseError {
                            line: *line,
                            message: "`fn` must be preceded by `public` or `internal`".into(),
                        });
                    }
                    let linkage = match &lex.toks[i - 1].0 {
                        Tok::Ident(l) if l == "public" => Linkage::Public,
                        Tok::Ident(l) if l == "internal" => Linkage::Internal,
                        _ => {
                            return Err(ParseError {
                                line: lex.toks[i].1,
                                message: "`fn` must be preceded by `public` or `internal`".into(),
                            })
                        }
                    };
                    if let Some((Tok::Ident(name), line)) = lex.toks.get(i + 1).cloned() {
                        let inlinable = !matches!(
                            lex.toks.get(i + 2).map(|(t, _)| t),
                            Some(Tok::Ident(s)) if s == "noinline"
                        );
                        if funcs_by_name
                            .insert(name.clone(), FuncId::new(decl_order.len() as u32))
                            .is_some()
                        {
                            return Err(ParseError {
                                line,
                                message: format!("duplicate function `{name}`"),
                            });
                        }
                        decl_order.push((name, linkage, inlinable));
                    }
                }
            }
            i += 1;
        }
    }

    let mut module = Module::new(name);
    let mut globals_by_name: HashMap<String, GlobalId> = HashMap::new();
    let mut max_site: Option<u32> = None;
    let mut defined = vec![false; decl_order.len()];

    loop {
        match lex.peek() {
            Some(Tok::Punct('}')) => {
                lex.next()?;
                break;
            }
            Some(Tok::Ident(kw)) if kw == "global" => {
                lex.next()?;
                lex.expect_punct('@')?;
                let gname = lex.expect_ident()?;
                lex.expect_punct('=')?;
                let init = lex.expect_int()?;
                if globals_by_name.contains_key(&gname) {
                    return Err(lex.err(format!("duplicate global `@{gname}`")));
                }
                let id = module.add_global(gname.clone(), init);
                globals_by_name.insert(gname, id);
            }
            Some(Tok::Ident(kw)) if kw == "public" || kw == "internal" => {
                lex.next()?;
                lex.expect_keyword("fn")?;
                let fname = lex.expect_ident()?;
                let fid = funcs_by_name[&fname];
                lex.eat_keyword("noinline");
                lex.expect_punct('{')?;
                // Declare any functions not yet materialized, in order, so
                // ids match the pre-scan.
                while module.func_count() <= fid.index() {
                    let (n, l, inl) = decl_order[module.func_count()].clone();
                    let id = module.declare_function(n, 0, l);
                    module.func_mut(id).inlinable = inl;
                }
                if defined[fid.index()] {
                    return Err(lex.err(format!("function `{fname}` defined twice")));
                }
                defined[fid.index()] = true;
                let ctx =
                    FnContext { funcs_by_name: &funcs_by_name, globals_by_name: &globals_by_name };
                parse_function_body(&mut lex, &ctx, &mut module, fid, &mut max_site)?;
            }
            other => return Err(lex.err(format!("expected item, found {other:?}"))),
        }
    }
    // Materialize trailing declared-but-unreached functions (cannot normally
    // happen, but keeps ids consistent with the pre-scan).
    while module.func_count() < decl_order.len() {
        let (n, l, inl) = decl_order[module.func_count()].clone();
        let id = module.declare_function(n, 0, l);
        module.func_mut(id).inlinable = inl;
    }
    if let Some(m) = max_site {
        module.reserve_call_sites(m + 1);
    }
    Ok(module)
}

fn parse_function_body(
    lex: &mut Lexer,
    ctx: &FnContext<'_>,
    module: &mut Module,
    fid: FuncId,
    max_site: &mut Option<u32>,
) -> Result<(), ParseError> {
    let mut max_value: u32 = 0;
    let mut first_block = true;
    loop {
        if matches!(lex.peek(), Some(Tok::Punct('}'))) {
            lex.next()?;
            break;
        }
        // Block header: bN(params):
        let s = lex.expect_ident()?;
        let bid = BlockId::new(parse_prefixed_id(lex, &s, 'b')?);
        let params = parse_value_list(lex)?;
        lex.expect_punct(':')?;
        for p in &params {
            max_value = max_value.max(p.as_u32() + 1);
        }
        if first_block {
            if bid != BlockId::new(0) {
                return Err(lex.err("first block must be b0"));
            }
            // Replace the default empty entry with one carrying the params.
            let f = module.func_mut(fid);
            f.blocks[0].params = params;
            first_block = false;
        } else {
            let f = module.func_mut(fid);
            let got = f.add_block(params);
            if got != bid {
                return Err(lex.err(format!(
                    "expected block {got}, found {bid} (blocks must be dense and in order)"
                )));
            }
        }

        // Instructions until a terminator keyword.
        loop {
            let checkpoint = lex.pos;
            let tok = lex.next()?;
            let word = match &tok {
                Tok::Ident(s) => s.clone(),
                other => return Err(lex.err(format!("expected instruction, found {other:?}"))),
            };
            match word.as_str() {
                "jump" => {
                    let t = parse_target(lex)?;
                    module.func_mut(fid).block_mut(bid).term = Terminator::Jump(t);
                    break;
                }
                "br" => {
                    let cond = parse_value(lex)?;
                    lex.expect_punct(',')?;
                    let then_to = parse_target(lex)?;
                    lex.expect_punct(',')?;
                    let else_to = parse_target(lex)?;
                    module.func_mut(fid).block_mut(bid).term =
                        Terminator::Branch { cond, then_to, else_to };
                    break;
                }
                "ret" => {
                    let v = if matches!(lex.peek(), Some(Tok::Ident(s)) if s.starts_with('v')) {
                        Some(parse_value(lex)?)
                    } else {
                        None
                    };
                    module.func_mut(fid).block_mut(bid).term = Terminator::Return(v);
                    break;
                }
                "unreachable" => {
                    module.func_mut(fid).block_mut(bid).term = Terminator::Unreachable;
                    break;
                }
                "store" => {
                    let g = parse_global_ref(lex, ctx)?;
                    lex.expect_punct(',')?;
                    let src = parse_value(lex)?;
                    module.func_mut(fid).block_mut(bid).insts.push(Inst::Store { global: g, src });
                }
                "call" => {
                    // Call with discarded result.
                    let inst = parse_call_tail(lex, ctx, None)?;
                    if let Inst::Call { site, .. } = &inst {
                        *max_site = Some(max_site.unwrap_or(0).max(site.as_u32()));
                    }
                    module.func_mut(fid).block_mut(bid).insts.push(inst);
                }
                _ => {
                    // Must be `vN = ...`.
                    lex.pos = checkpoint;
                    let dst = parse_value(lex)?;
                    max_value = max_value.max(dst.as_u32() + 1);
                    lex.expect_punct('=')?;
                    let op = lex.expect_ident()?;
                    let inst = match op.as_str() {
                        "const" => {
                            let v = lex.expect_int()?;
                            Inst::Const { dst, value: v }
                        }
                        "call" => {
                            let inst = parse_call_tail(lex, ctx, Some(dst))?;
                            if let Inst::Call { site, .. } = &inst {
                                *max_site = Some(max_site.unwrap_or(0).max(site.as_u32()));
                            }
                            inst
                        }
                        "load" => {
                            let g = parse_global_ref(lex, ctx)?;
                            Inst::Load { dst, global: g }
                        }
                        other => {
                            let bop = BinOp::from_mnemonic(other)
                                .ok_or_else(|| lex.err(format!("unknown opcode `{other}`")))?;
                            let lhs = parse_value(lex)?;
                            lex.expect_punct(',')?;
                            let rhs = parse_value(lex)?;
                            Inst::Bin { dst, op: bop, lhs, rhs }
                        }
                    };
                    inst.for_each_use(|v| max_value = max_value.max(v.as_u32() + 1));
                    module.func_mut(fid).block_mut(bid).insts.push(inst);
                }
            }
        }
    }
    module.func_mut(fid).reserve_values(max_value);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;

    #[test]
    fn parses_minimal_module() {
        let m = parse_module(
            r#"module "t" {
                public fn main {
                b0():
                  v0 = const 1
                  ret v0
                }
            }"#,
        )
        .unwrap();
        assert_eq!(m.name, "t");
        assert_eq!(m.func_count(), 1);
        assert_eq!(m.func(FuncId::new(0)).inst_count(), 1);
    }

    #[test]
    fn parses_forward_references_and_sites() {
        let m = parse_module(
            r#"module "t" {
                public fn main {
                b0():
                  v0 = const 3
                  v1 = call helper(v0) site s4
                  ret v1
                }
                internal fn helper {
                b0(v0):
                  ret v0
                }
            }"#,
        )
        .unwrap();
        assert_eq!(m.call_site_bound(), 5);
        let main = m.func_by_name("main").unwrap();
        assert_eq!(m.func(main).call_sites(), vec![CallSiteId::new(4)]);
    }

    #[test]
    fn round_trips_printer_output() {
        let mut m = Module::new("rt");
        let g = m.add_global("g", -7);
        let h = m.declare_function("h", 1, Linkage::Internal);
        let f = m.declare_function("f", 1, Linkage::Public);
        {
            let mut b = FuncBuilder::new(&mut m, h);
            let p = b.param(0);
            let c = b.iconst(-1);
            let r = b.bin(BinOp::Mul, p, c);
            b.store(g, r);
            b.ret(Some(r));
        }
        {
            let mut b = FuncBuilder::new(&mut m, f);
            let p = b.param(0);
            let (t, _) = b.new_block(0);
            let (e, eps) = b.new_block(1);
            b.branch(p, t, &[], e, &[p]);
            b.switch_to(t);
            let v = b.call(h, &[p]).unwrap();
            b.jump(e, &[v]);
            b.switch_to(e);
            b.ret(Some(eps[0]));
        }
        let text = m.to_string();
        let parsed = parse_module(&text).unwrap();
        assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn rejects_unknown_opcode() {
        let err = parse_module(
            r#"module "t" {
                public fn main {
                b0():
                  v0 = frobnicate v1, v2
                  ret
                }
            }"#,
        )
        .unwrap_err();
        assert!(err.message.contains("unknown opcode"));
        assert!(err.to_string().contains("line"));
    }

    #[test]
    fn rejects_duplicate_function() {
        let err = parse_module(
            r#"module "t" {
                public fn a {
                b0():
                  ret
                }
                public fn a {
                b0():
                  ret
                }
            }"#,
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate function"));
    }

    #[test]
    fn rejects_out_of_order_blocks() {
        let err = parse_module(
            r#"module "t" {
                public fn a {
                b0():
                  jump b2()
                b2():
                  ret
                }
            }"#,
        )
        .unwrap_err();
        assert!(err.message.contains("dense and in order"));
    }

    #[test]
    fn parses_comments_and_noinline() {
        let m = parse_module(
            "module \"t\" {\n  # a comment\n  internal fn a noinline {\n  b0():\n    ret\n  }\n}",
        )
        .unwrap();
        assert!(!m.func(FuncId::new(0)).inlinable);
    }

    #[test]
    fn parses_inline_path_annotations() {
        let src = r#"module "t" {
            internal fn a {
            b0():
              call b() site s0 path [b]
              ret
            }
            internal fn b {
            b0():
              ret
            }
        }"#;
        let m = parse_module(src).unwrap();
        let a = m.func_by_name("a").unwrap();
        let b = m.func_by_name("b").unwrap();
        match &m.func(a).blocks[0].insts[0] {
            Inst::Call { inline_path, .. } => assert_eq!(inline_path, &vec![b]),
            other => panic!("expected call, got {other:?}"),
        }
    }
}
