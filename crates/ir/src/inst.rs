//! Instructions and block terminators.
//!
//! The IR is a conventional SSA mid-level representation: straight-line
//! instructions inside basic blocks, with block parameters instead of phi
//! nodes (à la Cranelift/MLIR). All values are 64-bit integers; comparisons
//! produce `0`/`1` and conditional branches test for non-zero.

use crate::ids::{BlockId, CallSiteId, FuncId, GlobalId, ValueId};
use std::fmt;

/// A binary operator.
///
/// Division and remainder are *total*: dividing by zero yields `0`, and
/// `i64::MIN / -1` wraps. This keeps the interpreter and constant folder in
/// exact agreement without trap modelling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Total signed division (`x / 0 == 0`).
    Div,
    /// Total signed remainder (`x % 0 == 0`).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (shift amount is masked to `0..64`).
    Shl,
    /// Arithmetic right shift (shift amount is masked to `0..64`).
    Shr,
    /// Equality comparison, yields `0`/`1`.
    Eq,
    /// Inequality comparison, yields `0`/`1`.
    Ne,
    /// Signed less-than, yields `0`/`1`.
    Lt,
    /// Signed less-or-equal, yields `0`/`1`.
    Le,
    /// Signed greater-than, yields `0`/`1`.
    Gt,
    /// Signed greater-or-equal, yields `0`/`1`.
    Ge,
}

impl BinOp {
    /// All operators, in a fixed order (useful for fuzzing and generation).
    pub const ALL: [BinOp; 16] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ];

    /// Returns the textual mnemonic used by the printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::Lt => "lt",
            BinOp::Le => "le",
            BinOp::Gt => "gt",
            BinOp::Ge => "ge",
        }
    }

    /// Parses a mnemonic back into an operator.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|op| op.mnemonic() == s)
    }

    /// Returns `true` for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// Evaluates the operator on two constants with the IR's total semantics.
    pub fn eval(self, lhs: i64, rhs: i64) -> i64 {
        match self {
            BinOp::Add => lhs.wrapping_add(rhs),
            BinOp::Sub => lhs.wrapping_sub(rhs),
            BinOp::Mul => lhs.wrapping_mul(rhs),
            BinOp::Div => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_div(rhs)
                }
            }
            BinOp::Rem => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_rem(rhs)
                }
            }
            BinOp::And => lhs & rhs,
            BinOp::Or => lhs | rhs,
            BinOp::Xor => lhs ^ rhs,
            BinOp::Shl => lhs.wrapping_shl(rhs as u32 & 63),
            BinOp::Shr => lhs.wrapping_shr(rhs as u32 & 63),
            BinOp::Eq => (lhs == rhs) as i64,
            BinOp::Ne => (lhs != rhs) as i64,
            BinOp::Lt => (lhs < rhs) as i64,
            BinOp::Le => (lhs <= rhs) as i64,
            BinOp::Gt => (lhs > rhs) as i64,
            BinOp::Ge => (lhs >= rhs) as i64,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A straight-line instruction.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `dst = const value`
    Const {
        /// Result value.
        dst: ValueId,
        /// The constant.
        value: i64,
    },
    /// `dst = op lhs, rhs`
    Bin {
        /// Result value.
        dst: ValueId,
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// `dst = call callee(args...) site sN`
    ///
    /// `site` is the *original* call-site id; cloned copies keep it (coupled
    /// decisions, §2). `inline_path` records the functions already expanded
    /// along the inlining chain that produced this copy — the inliner uses it
    /// to bound recursive inlining to depth one (§3.2). It is empty for
    /// source-level calls and is not part of structural equality-relevant
    /// surface syntax, but is printed/parsed for full round-tripping.
    Call {
        /// Result value, if the call result is used.
        dst: Option<ValueId>,
        /// The called function.
        callee: FuncId,
        /// Argument values.
        args: Vec<ValueId>,
        /// Original call-site id (stable across cloning).
        site: CallSiteId,
        /// Functions already inlined along the chain that created this copy.
        inline_path: Vec<FuncId>,
    },
    /// `dst = load @g`
    Load {
        /// Result value.
        dst: ValueId,
        /// Global cell to read.
        global: GlobalId,
    },
    /// `store @g, src`
    Store {
        /// Global cell to write.
        global: GlobalId,
        /// Value stored.
        src: ValueId,
    },
}

impl Inst {
    /// Returns the value defined by this instruction, if any.
    pub fn def(&self) -> Option<ValueId> {
        match self {
            Inst::Const { dst, .. } | Inst::Bin { dst, .. } | Inst::Load { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } => None,
        }
    }

    /// Calls `f` for every value used (read) by this instruction.
    pub fn for_each_use(&self, mut f: impl FnMut(ValueId)) {
        match self {
            Inst::Const { .. } | Inst::Load { .. } => {}
            Inst::Bin { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::Call { args, .. } => {
                for &a in args {
                    f(a);
                }
            }
            Inst::Store { src, .. } => f(*src),
        }
    }

    /// Rewrites every used value through `f` (definition operands untouched).
    pub fn map_uses(&mut self, mut f: impl FnMut(ValueId) -> ValueId) {
        match self {
            Inst::Const { .. } | Inst::Load { .. } => {}
            Inst::Bin { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Inst::Call { args, .. } => {
                for a in args.iter_mut() {
                    *a = f(*a);
                }
            }
            Inst::Store { src, .. } => *src = f(*src),
        }
    }

    /// Returns `true` if this is a call instruction.
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. })
    }

    /// Returns `true` if removing this instruction (when its result is
    /// unused) could change observable behaviour, *ignoring* callee effects.
    ///
    /// Calls must additionally be checked against the callee's effect summary
    /// (see [`crate::analysis::EffectSummary`]).
    pub fn has_direct_side_effect(&self) -> bool {
        matches!(self, Inst::Store { .. })
    }
}

/// A jump target: destination block plus block arguments.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct JumpTarget {
    /// Destination block.
    pub block: BlockId,
    /// Arguments bound to the destination's block parameters.
    pub args: Vec<ValueId>,
}

impl JumpTarget {
    /// Creates a target with no arguments.
    pub fn new(block: BlockId) -> Self {
        JumpTarget { block, args: Vec::new() }
    }

    /// Creates a target with arguments.
    pub fn with_args(block: BlockId, args: Vec<ValueId>) -> Self {
        JumpTarget { block, args }
    }
}

/// A basic-block terminator.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(JumpTarget),
    /// Two-way branch on `cond != 0`.
    Branch {
        /// Condition value (non-zero takes `then_to`).
        cond: ValueId,
        /// Taken when `cond != 0`.
        then_to: JumpTarget,
        /// Taken when `cond == 0`.
        else_to: JumpTarget,
    },
    /// Function return, optionally carrying a value.
    Return(Option<ValueId>),
    /// Statically unreachable control flow.
    Unreachable,
}

impl Terminator {
    /// Calls `f` for every value used by the terminator.
    pub fn for_each_use(&self, mut f: impl FnMut(ValueId)) {
        match self {
            Terminator::Jump(t) => {
                for &a in &t.args {
                    f(a);
                }
            }
            Terminator::Branch { cond, then_to, else_to } => {
                f(*cond);
                for &a in &then_to.args {
                    f(a);
                }
                for &a in &else_to.args {
                    f(a);
                }
            }
            Terminator::Return(Some(v)) => f(*v),
            Terminator::Return(None) | Terminator::Unreachable => {}
        }
    }

    /// Rewrites every used value through `f`.
    pub fn map_uses(&mut self, mut f: impl FnMut(ValueId) -> ValueId) {
        match self {
            Terminator::Jump(t) => {
                for a in t.args.iter_mut() {
                    *a = f(*a);
                }
            }
            Terminator::Branch { cond, then_to, else_to } => {
                *cond = f(*cond);
                for a in then_to.args.iter_mut() {
                    *a = f(*a);
                }
                for a in else_to.args.iter_mut() {
                    *a = f(*a);
                }
            }
            Terminator::Return(Some(v)) => *v = f(*v),
            Terminator::Return(None) | Terminator::Unreachable => {}
        }
    }

    /// Returns the successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![t.block],
            Terminator::Branch { then_to, else_to, .. } => vec![then_to.block, else_to.block],
            Terminator::Return(_) | Terminator::Unreachable => vec![],
        }
    }

    /// Calls `f` with a mutable reference to each jump target.
    pub fn for_each_target_mut(&mut self, mut f: impl FnMut(&mut JumpTarget)) {
        match self {
            Terminator::Jump(t) => f(t),
            Terminator::Branch { then_to, else_to, .. } => {
                f(then_to);
                f(else_to);
            }
            Terminator::Return(_) | Terminator::Unreachable => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_mnemonics_round_trip() {
        for op in BinOp::ALL {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(BinOp::from_mnemonic("bogus"), None);
    }

    #[test]
    fn binop_eval_is_total() {
        assert_eq!(BinOp::Div.eval(10, 0), 0);
        assert_eq!(BinOp::Rem.eval(10, 0), 0);
        assert_eq!(BinOp::Div.eval(i64::MIN, -1), i64::MIN);
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(BinOp::Shl.eval(1, 65), 2);
        assert_eq!(BinOp::Shr.eval(-8, 1), -4);
    }

    #[test]
    fn binop_eval_comparisons_yield_bool() {
        assert_eq!(BinOp::Lt.eval(1, 2), 1);
        assert_eq!(BinOp::Ge.eval(1, 2), 0);
        assert_eq!(BinOp::Eq.eval(5, 5), 1);
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn inst_def_and_uses() {
        let i = Inst::Bin {
            dst: ValueId::new(3),
            op: BinOp::Add,
            lhs: ValueId::new(1),
            rhs: ValueId::new(2),
        };
        assert_eq!(i.def(), Some(ValueId::new(3)));
        let mut uses = vec![];
        i.for_each_use(|v| uses.push(v));
        assert_eq!(uses, vec![ValueId::new(1), ValueId::new(2)]);
    }

    #[test]
    fn inst_map_uses_rewrites_operands() {
        let mut i = Inst::Store { global: GlobalId::new(0), src: ValueId::new(4) };
        i.map_uses(|_| ValueId::new(9));
        assert_eq!(i, Inst::Store { global: GlobalId::new(0), src: ValueId::new(9) });
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: ValueId::new(0),
            then_to: JumpTarget::new(BlockId::new(1)),
            else_to: JumpTarget::new(BlockId::new(2)),
        };
        assert_eq!(t.successors(), vec![BlockId::new(1), BlockId::new(2)]);
        assert_eq!(Terminator::Return(None).successors(), vec![]);
    }

    #[test]
    fn call_has_no_direct_side_effect_marker() {
        let call = Inst::Call {
            dst: None,
            callee: FuncId::new(0),
            args: vec![],
            site: CallSiteId::new(0),
            inline_path: vec![],
        };
        assert!(!call.has_direct_side_effect());
        assert!(call.is_call());
        let store = Inst::Store { global: GlobalId::new(0), src: ValueId::new(0) };
        assert!(store.has_direct_side_effect());
    }
}
