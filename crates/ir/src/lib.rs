//! # optinline-ir
//!
//! A compact, typed, SSA mid-level IR — the substrate on which the
//! `optinline` workspace reproduces *"Understanding and Exploiting Optimal
//! Function Inlining"* (ASPLOS 2022).
//!
//! The IR plays the role LLVM-IR plays in the paper: programs are
//! [`Module`]s of [`Function`]s whose call instructions carry stable
//! [`CallSiteId`]s. Inlining decisions are expressed per call site, and
//! cloned copies of a call keep the original id so one decision covers all
//! copies (the paper's *coupled* model, §2).
//!
//! ## Components
//!
//! - [`Module`], [`Function`], [`Block`], [`Inst`], [`Terminator`] — the IR
//!   data structures (block parameters instead of phi nodes).
//! - [`FuncBuilder`] — ergonomic construction.
//! - [`fmt::Display`](std::fmt::Display) on [`Module`] and
//!   [`parse_module`] — a round-tripping textual format.
//! - [`verify_module`] — SSA well-formedness checking.
//! - [`analysis`] — CFG reachability, dominators, effect summaries.
//! - [`analysis_manager`] — lazily cached analyses with explicit
//!   invalidation, the data side of the change-driven pass manager.
//! - [`interp`] — a reference interpreter with a cycle cost model (the
//!   performance substrate for the paper's Figure 19).
//!
//! ## Semantics notes
//!
//! All values are `i64`. Division is total (`x / 0 == 0`). There are no
//! traps. Programs produced by `optinline-workloads` always terminate; the
//! interpreter enforces a fuel budget regardless.
//!
//! ## Example
//!
//! ```
//! use optinline_ir::{Module, Linkage, FuncBuilder, BinOp, interp::Interp};
//!
//! let mut m = Module::new("demo");
//! let sq = m.declare_function("square", 1, Linkage::Internal);
//! let main = m.declare_function("main", 0, Linkage::Public);
//! {
//!     let mut b = FuncBuilder::new(&mut m, sq);
//!     let p = b.param(0);
//!     let r = b.bin(BinOp::Mul, p, p);
//!     b.ret(Some(r));
//! }
//! {
//!     let mut b = FuncBuilder::new(&mut m, main);
//!     let x = b.iconst(9);
//!     let y = b.call(sq, &[x]);
//!     b.ret(y);
//! }
//! optinline_ir::verify_module(&m)?;
//! let out = Interp::new(&m).run(main, &[])?;
//! assert_eq!(out.ret, Some(81));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod analysis_manager;
mod builder;
pub mod cancel;
mod display;
pub mod dot;
mod function;
mod ids;
mod inst;
pub mod interp;
pub mod link;
mod measure;
mod module;
pub mod parse;
pub mod slice;
pub mod verify;

pub use analysis_manager::{AnalysisCacheStats, AnalysisManager, CfgFacts, PreservedAnalyses};
pub use builder::FuncBuilder;
pub use display::{FuncDisplay, InstDisplay};
pub use function::{Block, Function, Linkage};
pub use ids::{BlockId, CallSiteId, FuncId, GlobalId, ValueId};
pub use inst::{BinOp, Inst, JumpTarget, Terminator};
pub use link::{internalize_except, link_modules};
pub use measure::Measurement;
pub use module::{Global, Module};
pub use parse::{parse_module, ParseError};
pub use slice::extract_slice;
pub use verify::{assert_verified, verify_function, verify_module, VerifyError};
