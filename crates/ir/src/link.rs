//! Linking modules: combine several translation units into one, the way an
//! LTO build presents a whole program to the optimizer.
//!
//! The paper analyzes per-file optimal inlining because C/C++ resolve
//! cross-file calls at link time (its footnote 5); linking makes the
//! complementary experiment possible — how much inlining headroom hides
//! behind translation-unit boundaries?
//!
//! Linking concatenates functions and globals, renaming on collision
//! (`name` → `name.lN`), and re-mints call-site ids so the combined
//! module's ids stay dense and unique. Public functions stay public (they
//! are the roots); internal functions stay internal.

use crate::function::Function;
use crate::ids::{CallSiteId, FuncId, GlobalId};
use crate::inst::Inst;
use crate::module::Module;
use std::collections::{HashMap, HashSet};

/// Links `modules` into one module named `name`.
///
/// Per-module `FuncId`/`GlobalId`/`CallSiteId` spaces are remapped into the
/// combined module; colliding symbol names get a `.l<module-index>` suffix
/// (extended with a counter if still taken), staying within the textual
/// format's identifier alphabet.
///
/// # Panics
///
/// Panics if `modules` is empty.
pub fn link_modules(name: impl Into<String>, modules: &[Module]) -> Module {
    assert!(!modules.is_empty(), "cannot link zero modules");
    let mut out = Module::new(name);
    let mut taken_funcs: HashSet<String> = HashSet::new();
    let mut taken_globals: HashSet<String> = HashSet::new();
    fn uniquify(taken: &mut HashSet<String>, base: String, mi: usize) -> String {
        if taken.insert(base.clone()) {
            return base;
        }
        let mut k = 0usize;
        loop {
            let candidate =
                if k == 0 { format!("{base}.l{mi}") } else { format!("{base}.l{mi}.{k}") };
            if taken.insert(candidate.clone()) {
                return candidate;
            }
            k += 1;
        }
    }

    let mut func_maps: Vec<HashMap<FuncId, FuncId>> = Vec::with_capacity(modules.len());
    let mut global_maps: Vec<HashMap<GlobalId, GlobalId>> = Vec::with_capacity(modules.len());

    // First pass, definitions: declare every defined function so
    // cross-references resolve. The first definition of a name owns it;
    // later same-named definitions are renamed.
    let mut definitions_by_name: HashMap<String, FuncId> = HashMap::new();
    for (mi, m) in modules.iter().enumerate() {
        let mut fmap = HashMap::new();
        for (id, f) in m.iter_funcs() {
            if m.is_extern_decl(id) {
                continue; // resolved below
            }
            let unique = uniquify(&mut taken_funcs, f.name.clone(), mi);
            let new_id = out.declare_function(unique.clone(), f.param_count(), f.linkage);
            out.func_mut(new_id).inlinable = f.inlinable;
            if unique == f.name {
                definitions_by_name.insert(unique, new_id);
            }
            fmap.insert(id, new_id);
        }
        func_maps.push(fmap);
        let mut gmap = HashMap::new();
        for (gi, g) in m.globals().iter().enumerate() {
            let unique = uniquify(&mut taken_globals, g.name.clone(), mi);
            let new_id = out.add_global(unique, g.init);
            gmap.insert(GlobalId::new(gi as u32), new_id);
        }
        global_maps.push(gmap);
    }
    // First pass, declarations: an extern prototype resolves to the
    // definition that owns its name (the LTO payoff — the resolved call
    // becomes an inlining candidate); unresolved prototypes unify into one
    // shared extern per name.
    let mut externs_by_name: HashMap<String, FuncId> = HashMap::new();
    for (mi, m) in modules.iter().enumerate() {
        for (id, f) in m.iter_funcs() {
            if !m.is_extern_decl(id) {
                continue;
            }
            let target = if let Some(&def) = definitions_by_name.get(&f.name) {
                def
            } else {
                *externs_by_name.entry(f.name.clone()).or_insert_with(|| {
                    taken_funcs.insert(f.name.clone());
                    out.declare_extern(f.name.clone(), f.param_count())
                })
            };
            func_maps[mi].insert(id, target);
        }
    }

    // Second pass: copy bodies, remapping func/global/call-site ids.
    for (mi, m) in modules.iter().enumerate() {
        let fmap = &func_maps[mi];
        let gmap = &global_maps[mi];
        let mut site_map: HashMap<CallSiteId, CallSiteId> = HashMap::new();
        for (id, f) in m.iter_funcs() {
            if m.is_extern_decl(id) {
                continue; // no body to copy; maps to a definition or stub
            }
            let new_id = fmap[&id];
            let mut body: Function = f.clone();
            for block in &mut body.blocks {
                for inst in &mut block.insts {
                    match inst {
                        Inst::Call { callee, site, inline_path, .. } => {
                            *callee = fmap[callee];
                            let mapped =
                                *site_map.entry(*site).or_insert_with(|| out.new_call_site());
                            *site = mapped;
                            for p in inline_path.iter_mut() {
                                *p = fmap[p];
                            }
                        }
                        Inst::Load { global, .. } | Inst::Store { global, .. } => {
                            *global = gmap[global];
                        }
                        _ => {}
                    }
                }
            }
            let name = out.func(new_id).name.clone();
            body.name = name;
            *out.func_mut(new_id) = body;
        }
    }
    out
}

/// LTO-style internalization: demote public definitions to internal
/// linkage unless `keep` says the symbol must stay exported. Extern
/// declarations are untouched.
///
/// This is the second half of what makes linking profitable: once a
/// formerly-exported function is internal, the optimizer may delete it
/// after its last remaining call is inlined.
pub fn internalize_except(module: &mut Module, keep: impl Fn(&str) -> bool) -> usize {
    let ids: Vec<FuncId> = module.func_ids().collect();
    let mut demoted = 0;
    for id in ids {
        if module.is_extern_decl(id) {
            continue;
        }
        let f = module.func(id);
        if f.linkage == crate::function::Linkage::Public && !keep(&f.name) {
            module.func_mut(id).linkage = crate::function::Linkage::Internal;
            demoted += 1;
        }
    }
    demoted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::function::Linkage;
    use crate::inst::BinOp;

    fn unit(tag: i64, with_main: bool) -> Module {
        let mut m = Module::new(format!("unit{tag}"));
        let g = m.add_global("shared_name", tag);
        let helper = m.declare_function("helper", 1, Linkage::Internal);
        {
            let mut b = FuncBuilder::new(&mut m, helper);
            let p = b.param(0);
            let c = b.iconst(tag);
            let r = b.bin(BinOp::Add, p, c);
            b.ret(Some(r));
        }
        let entry_name = if with_main { "main".to_string() } else { format!("entry{tag}") };
        let e = m.declare_function(entry_name, 0, Linkage::Public);
        {
            let mut b = FuncBuilder::new(&mut m, e);
            let x = b.load(g);
            let v = b.call(helper, &[x]).unwrap();
            b.store(g, v);
            b.ret(Some(v));
        }
        m
    }

    #[test]
    fn linked_module_verifies_and_runs() {
        let linked = link_modules("prog", &[unit(1, true), unit(2, false)]);
        crate::verify::verify_module(&linked).unwrap();
        let out = crate::interp::run_main(&linked).unwrap();
        // unit1's main: counter 1 + 1 = 2.
        assert_eq!(out.ret, Some(2));
        assert_eq!(linked.func_count(), 4);
        assert_eq!(linked.globals().len(), 2);
    }

    #[test]
    fn colliding_names_are_renamed() {
        let linked = link_modules("prog", &[unit(1, true), unit(2, false)]);
        assert!(linked.func_by_name("helper").is_some());
        assert!(linked.func_by_name("helper.l1").is_some());
        let names: Vec<&str> = linked.globals().iter().map(|g| g.name.as_str()).collect();
        assert!(names.contains(&"shared_name"));
        assert!(names.contains(&"shared_name.l1"));
    }

    #[test]
    fn call_sites_are_reminted_densely_and_uniquely() {
        let a = unit(1, true);
        let b = unit(2, false);
        let linked = link_modules("prog", &[a, b]);
        let sites = linked.inlinable_sites();
        assert_eq!(sites.len(), 2);
        assert!(sites.iter().all(|s| s.as_u32() < linked.call_site_bound()));
    }

    #[test]
    fn linked_text_round_trips_through_the_parser() {
        let linked = link_modules("prog", &[unit(1, true), unit(2, false)]);
        let text = linked.to_string();
        let parsed = crate::parse::parse_module(&text).unwrap();
        assert_eq!(parsed.to_string(), text);
    }

    #[test]
    #[should_panic(expected = "zero modules")]
    fn linking_nothing_panics() {
        link_modules("empty", &[]);
    }

    #[test]
    fn extern_declarations_resolve_to_definitions() {
        // Module A defines `shared_fn`; module B declares it extern and
        // calls it. After linking, B's call targets A's body and becomes
        // an inlining candidate.
        let mut a = Module::new("a");
        let shared = a.declare_function("shared_fn", 1, Linkage::Public);
        {
            let mut b = FuncBuilder::new(&mut a, shared);
            let p = b.param(0);
            let r = b.bin(BinOp::Mul, p, p);
            b.ret(Some(r));
        }
        let mut b_mod = Module::new("b");
        let ext = b_mod.declare_extern("shared_fn", 1);
        assert!(b_mod.is_extern_decl(ext));
        let main = b_mod.declare_function("main", 0, Linkage::Public);
        {
            let mut b = FuncBuilder::new(&mut b_mod, main);
            let x = b.iconst(6);
            let v = b.call(ext, &[x]).unwrap();
            b.ret(Some(v));
        }
        // Per-file: the extern call is not an inlining candidate.
        assert!(b_mod.inlinable_sites().is_empty());

        let linked = link_modules("prog", &[a, b_mod]);
        crate::verify::verify_module(&linked).unwrap();
        // Linked: exactly the resolved call became a candidate.
        assert_eq!(linked.inlinable_sites().len(), 1);
        let out = crate::interp::run_main(&linked).unwrap();
        assert_eq!(out.ret, Some(36));
    }

    #[test]
    fn internalize_demotes_everything_but_the_kept_roots() {
        let linked = link_modules("prog", &[unit(1, true), unit(2, false)]);
        let demoted = internalize_except(&mut linked.clone(), |name| name == "main");
        assert_eq!(demoted, 1); // entry2 demoted; main kept
        let mut m = linked;
        internalize_except(&mut m, |name| name == "main");
        let main = m.func_by_name("main").unwrap();
        assert_eq!(m.func(main).linkage, Linkage::Public);
        let entry = m.func_by_name("entry2").unwrap();
        assert_eq!(m.func(entry).linkage, Linkage::Internal);
    }

    #[test]
    fn unresolved_externs_unify_by_name() {
        let make = |tag: i64| {
            let mut m = Module::new(format!("m{tag}"));
            let ext = m.declare_extern("libc_write", 1);
            let f = m.declare_function(format!("user{tag}"), 1, Linkage::Public);
            let mut b = FuncBuilder::new(&mut m, f);
            let p = b.param(0);
            let v = b.call(ext, &[p]).unwrap();
            b.ret(Some(v));
            m
        };
        let linked = link_modules("prog", &[make(1), make(2)]);
        crate::verify::verify_module(&linked).unwrap();
        // One shared extern, two users, still no inlining candidates.
        let externs: Vec<_> = linked.func_ids().filter(|&id| linked.is_extern_decl(id)).collect();
        assert_eq!(externs.len(), 1);
        assert!(linked.inlinable_sites().is_empty());
    }
}
