//! The multi-objective evaluation result shared by every layer above the
//! IR: code size plus (optionally) simulated cycles.
//!
//! The paper's pipeline measures one scalar — bytes of `-Os` output — and
//! PRs 1–7 threaded that `u64` through evaluator, memo, store, daemon, and
//! autotuner. [`Measurement`] lifts the assumption: `size` is always
//! present (the size objective stays byte-identical to the scalar era),
//! `cycles` is present only when the caller asked for a speed or Pareto
//! objective and the module had something executable to interpret.
//!
//! The type lives in `optinline-ir` because the store depends on `ir` (for
//! [`CallSiteId`](crate::CallSiteId)) and `core` depends on the store —
//! this is the lowest crate every measuring layer can see.

/// One evaluation result: `-Os` text size in bytes, plus simulated cycles
/// when a runtime objective was requested and measurable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Measurement {
    /// Size of the optimized module's textual form, in bytes.
    pub size: u64,
    /// Total simulated cycles over the module's public entry points;
    /// `None` when cycles were not requested or nothing was executable.
    pub cycles: Option<u64>,
}

impl Measurement {
    /// A size-only measurement — what every pre-measurement layer
    /// produced, and what old store lines decode to.
    pub fn size_only(size: u64) -> Measurement {
        Measurement { size, cycles: None }
    }

    /// A full measurement with both metrics.
    pub fn with_cycles(size: u64, cycles: u64) -> Measurement {
        Measurement { size, cycles: Some(cycles) }
    }

    /// Pareto dominance: `self` dominates `other` iff it is no worse on
    /// both metrics and strictly better on at least one. Measurements with
    /// mismatched cycle availability are incomparable (never dominate), so
    /// a size-only entry can never evict a measured one or vice versa.
    pub fn dominates(&self, other: &Measurement) -> bool {
        let (cycles_le, cycles_lt) = match (self.cycles, other.cycles) {
            (Some(a), Some(b)) => (a <= b, a < b),
            (None, None) => (true, false),
            _ => return false,
        };
        self.size <= other.size && cycles_le && (self.size < other.size || cycles_lt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_only_has_no_cycles() {
        let m = Measurement::size_only(42);
        assert_eq!(m.size, 42);
        assert_eq!(m.cycles, None);
    }

    #[test]
    fn dominance_requires_no_worse_on_both_and_better_on_one() {
        let a = Measurement::with_cycles(10, 100);
        assert!(Measurement::with_cycles(9, 100).dominates(&a));
        assert!(Measurement::with_cycles(10, 99).dominates(&a));
        assert!(Measurement::with_cycles(9, 99).dominates(&a));
        assert!(!a.dominates(&a), "equal points never dominate each other");
        assert!(!Measurement::with_cycles(9, 101).dominates(&a), "trade-offs are incomparable");
        assert!(!Measurement::with_cycles(11, 99).dominates(&a));
    }

    #[test]
    fn mismatched_cycle_availability_is_incomparable() {
        let sized = Measurement::size_only(5);
        let timed = Measurement::with_cycles(10, 10);
        assert!(!sized.dominates(&timed));
        assert!(!timed.dominates(&sized));
        assert!(Measurement::size_only(4).dominates(&Measurement::size_only(5)));
    }
}
