//! The IR verifier: structural and SSA well-formedness checks.
//!
//! Run [`verify_module`] after construction or transformation; every pass in
//! `optinline-opt` is checked against it in tests.

use crate::analysis::{dominates, immediate_dominators, reachable_blocks};
use crate::ids::{BlockId, FuncId, ValueId};
use crate::inst::{Inst, JumpTarget, Terminator};
use crate::module::Module;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A verifier diagnostic: which function/block, and what went wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Offending function.
    pub func: FuncId,
    /// Offending block, when the error is block-local.
    pub block: Option<BlockId>,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error in {}", self.func)?;
        if let Some(b) = self.block {
            write!(f, " at {b}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl Error for VerifyError {}

/// Verifies every function in the module plus inter-procedural invariants
/// (call arity, callee existence, global indices).
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for (id, _) in module.iter_funcs() {
        verify_function(module, id)?;
    }
    Ok(())
}

/// Verifies a single function.
///
/// Checks performed:
/// - every block id referenced by a terminator exists;
/// - jump-target argument counts match destination parameter counts;
/// - no value is defined twice (SSA single assignment);
/// - every use of a value is dominated by its definition;
/// - value ids stay below the function's dense bound;
/// - call arity matches the callee's parameter count;
/// - global indices are in range.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_function(module: &Module, id: FuncId) -> Result<(), VerifyError> {
    let func = module.func(id);
    let err = |block: Option<BlockId>, message: String| VerifyError { func: id, block, message };

    if func.blocks.is_empty() {
        return Err(err(None, "function has no blocks".into()));
    }

    // Definitions: block params and instruction results, unique.
    let mut def_site: HashMap<ValueId, BlockId> = HashMap::new();
    for (bid, block) in func.iter_blocks() {
        for &p in &block.params {
            if p.as_u32() >= func.value_bound() {
                return Err(err(Some(bid), format!("{p} exceeds dense value bound")));
            }
            if def_site.insert(p, bid).is_some() {
                return Err(err(Some(bid), format!("{p} defined more than once")));
            }
        }
        for inst in &block.insts {
            if let Some(d) = inst.def() {
                if d.as_u32() >= func.value_bound() {
                    return Err(err(Some(bid), format!("{d} exceeds dense value bound")));
                }
                if def_site.insert(d, bid).is_some() {
                    return Err(err(Some(bid), format!("{d} defined more than once")));
                }
            }
        }
    }

    // Structural checks on terminators and calls.
    let check_target = |bid: BlockId, t: &JumpTarget| -> Result<(), VerifyError> {
        if t.block.index() >= func.blocks.len() {
            return Err(err(Some(bid), format!("jump to nonexistent block {}", t.block)));
        }
        let want = func.block(t.block).params.len();
        if t.args.len() != want {
            return Err(err(
                Some(bid),
                format!("jump to {} passes {} args, block takes {}", t.block, t.args.len(), want),
            ));
        }
        Ok(())
    };
    for (bid, block) in func.iter_blocks() {
        for inst in &block.insts {
            if let Inst::Call { callee, args, .. } = inst {
                if callee.index() >= module.func_count() {
                    return Err(err(Some(bid), format!("call to nonexistent function {callee}")));
                }
                let want = module.func(*callee).param_count();
                if args.len() != want {
                    return Err(err(
                        Some(bid),
                        format!(
                            "call to {} passes {} args, function takes {}",
                            module.func(*callee).name,
                            args.len(),
                            want
                        ),
                    ));
                }
            }
            if let Inst::Load { global, .. } | Inst::Store { global, .. } = inst {
                if global.index() >= module.globals().len() {
                    return Err(err(
                        Some(bid),
                        format!("reference to nonexistent global {global}"),
                    ));
                }
            }
        }
        match &block.term {
            Terminator::Jump(t) => check_target(bid, t)?,
            Terminator::Branch { then_to, else_to, .. } => {
                check_target(bid, then_to)?;
                check_target(bid, else_to)?;
            }
            Terminator::Return(_) | Terminator::Unreachable => {}
        }
    }

    // Dominance: every use in a reachable block must be dominated by its def.
    let reachable = reachable_blocks(func);
    let idom = immediate_dominators(func);
    for (bid, block) in func.iter_blocks() {
        if !reachable[bid.index()] {
            continue;
        }
        // Values defined earlier in this block (params + prior insts).
        let mut local: Vec<ValueId> = block.params.clone();
        let check_use = |v: ValueId, local: &[ValueId]| -> Result<(), VerifyError> {
            if local.contains(&v) {
                return Ok(());
            }
            match def_site.get(&v) {
                None => Err(err(Some(bid), format!("use of undefined value {v}"))),
                Some(&db) => {
                    if db == bid {
                        // Defined later in the same block.
                        Err(err(Some(bid), format!("use of {v} before its definition")))
                    } else if !reachable[db.index()] || !dominates(&idom, db, bid) {
                        Err(err(Some(bid), format!("use of {v} not dominated by its definition")))
                    } else {
                        Ok(())
                    }
                }
            }
        };
        for inst in &block.insts {
            let mut bad = None;
            inst.for_each_use(|v| {
                if bad.is_none() {
                    if let Err(e) = check_use(v, &local) {
                        bad = Some(e);
                    }
                }
            });
            if let Some(e) = bad {
                return Err(e);
            }
            if let Some(d) = inst.def() {
                local.push(d);
            }
        }
        let mut bad = None;
        block.term.for_each_use(|v| {
            if bad.is_none() {
                if let Err(e) = check_use(v, &local) {
                    bad = Some(e);
                }
            }
        });
        if let Some(e) = bad {
            return Err(e);
        }
    }
    Ok(())
}

/// Convenience wrapper asserting verification success with a readable panic.
///
/// # Panics
///
/// Panics with the pretty-printed module and diagnostic if verification
/// fails. Intended for tests and debug assertions in passes.
pub fn assert_verified(module: &Module) {
    if let Err(e) = verify_module(module) {
        panic!("IR verification failed: {e}\n--- module ---\n{module}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::function::Linkage;
    use crate::ids::GlobalId;
    use crate::inst::BinOp;

    fn ok_module() -> Module {
        let mut m = Module::new("m");
        let h = m.declare_function("h", 1, Linkage::Internal);
        let f = m.declare_function("f", 1, Linkage::Public);
        {
            let mut b = FuncBuilder::new(&mut m, h);
            let p = b.param(0);
            b.ret(Some(p));
        }
        {
            let mut b = FuncBuilder::new(&mut m, f);
            let p = b.param(0);
            let v = b.call(h, &[p]).unwrap();
            b.ret(Some(v));
        }
        m
    }

    #[test]
    fn accepts_well_formed_module() {
        assert_eq!(verify_module(&ok_module()), Ok(()));
    }

    #[test]
    fn rejects_double_definition() {
        let mut m = ok_module();
        let f = m.func_by_name("f").unwrap();
        let p0 = m.func(f).params()[0];
        m.func_mut(f).blocks[0].insts.push(Inst::Const { dst: p0, value: 0 });
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("defined more than once"));
    }

    #[test]
    fn rejects_undefined_use() {
        let mut m = ok_module();
        let f = m.func_by_name("f").unwrap();
        m.func_mut(f).blocks[0].term = Terminator::Return(Some(ValueId::new(3)));
        m.func_mut(f).reserve_values(4);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("undefined value") || e.message.contains("not dominated"));
    }

    #[test]
    fn rejects_use_before_definition_in_block() {
        let mut m = Module::new("m");
        let f = m.declare_function("f", 0, Linkage::Public);
        let func = m.func_mut(f);
        let a = func.new_value();
        let b = func.new_value();
        func.blocks[0].insts.push(Inst::Bin { dst: b, op: BinOp::Add, lhs: a, rhs: a });
        func.blocks[0].insts.push(Inst::Const { dst: a, value: 1 });
        func.blocks[0].term = Terminator::Return(Some(b));
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("before its definition"));
    }

    #[test]
    fn rejects_branch_arg_mismatch() {
        let mut m = Module::new("m");
        let f = m.declare_function("f", 1, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let p = b.param(0);
        let (t, _) = b.new_block(1);
        b.jump(t, &[]);
        b.ret(Some(p));
        let _ = t;
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("args"));
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut m = ok_module();
        let f = m.func_by_name("f").unwrap();
        if let Inst::Call { args, .. } = &mut m.func_mut(f).blocks[0].insts[0] {
            args.clear();
        }
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("passes 0 args"));
    }

    #[test]
    fn rejects_bad_global_reference() {
        let mut m = ok_module();
        let f = m.func_by_name("f").unwrap();
        let v = m.func_mut(f).new_value();
        m.func_mut(f).blocks[0].insts.insert(0, Inst::Load { dst: v, global: GlobalId::new(9) });
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("nonexistent global"));
    }

    #[test]
    fn rejects_nondominating_use() {
        // b0 branches to b1 or b2; b1 defines v, b2 uses it.
        let mut m = Module::new("m");
        let f = m.declare_function("f", 1, Linkage::Public);
        let mut bld = FuncBuilder::new(&mut m, f);
        let p = bld.param(0);
        let (b1, _) = bld.new_block(0);
        let (b2, _) = bld.new_block(0);
        bld.branch(p, b1, &[], b2, &[]);
        bld.switch_to(b1);
        let v = bld.iconst(1);
        bld.ret(Some(v));
        bld.switch_to(b2);
        bld.ret(Some(v));
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("not dominated"));
        assert!(e.to_string().contains("verify error"));
    }

    #[test]
    fn unreachable_blocks_are_not_dominance_checked() {
        let mut m = Module::new("m");
        let f = m.declare_function("f", 0, Linkage::Public);
        let mut bld = FuncBuilder::new(&mut m, f);
        let (dead, _) = bld.new_block(0);
        bld.ret(None);
        bld.switch_to(dead);
        // Dead block may reference values sloppily; it is ignored.
        bld.ret(None);
        assert_eq!(verify_module(&m), Ok(()));
    }
}
