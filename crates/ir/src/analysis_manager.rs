//! Lazy, cached, explicitly-invalidated analyses — the data side of the
//! change-driven pass manager.
//!
//! The optimization pipeline in `optinline-opt` historically recomputed
//! every analysis (effect summaries, CFG reachability, dominators, the
//! call graph) from scratch on every pass application, even when the pass
//! before it changed nothing the analysis depends on. The
//! [`AnalysisManager`] fixes that: analyses are computed on first request,
//! cached, and dropped only when a pass that does *not* preserve them
//! reports a change — the [`PreservedAnalyses`] contract.
//!
//! Three analyses are managed:
//!
//! - **Effect summary** (module-keyed): [`EffectSummary`] — which functions
//!   may read/write globals. Can be *frozen* so a sweep keeps using the
//!   snapshot taken at its start (the historical whole-module semantics,
//!   and the pipeline's decision-independence requirement from §3.2 of the
//!   paper).
//! - **CFG facts** (function-keyed): [`CfgFacts`] — block reachability,
//!   predecessor lists, and immediate dominators, consumed by GVN.
//! - **Call graph** (module-keyed): the caller map, consumed by
//!   dead-argument elimination to rewrite only the functions that actually
//!   call a pruned callee. Cleanup passes only ever *remove* call edges,
//!   so a cached caller map is a safe over-approximation until a pass that
//!   redirects or adds calls invalidates it.
//!
//! Cache traffic is counted in [`AnalysisCacheStats`] and surfaced through
//! `optinline optimize --pass-stats`.

use crate::analysis::{immediate_dominators, predecessors, reachable_blocks, EffectSummary};
use crate::{BlockId, FuncId, Module};

/// The analyses a pass promises are still valid for every function it
/// changed. The scheduler invalidates whatever is *not* preserved.
///
/// Built with [`none`](PreservedAnalyses::none) /
/// [`all`](PreservedAnalyses::all) plus the `plus_*` builders:
///
/// ```
/// use optinline_ir::PreservedAnalyses;
/// let p = PreservedAnalyses::none().plus_cfg().plus_call_graph();
/// assert!(p.cfg() && p.call_graph() && !p.effects());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PreservedAnalyses {
    cfg: bool,
    effects: bool,
    call_graph: bool,
}

impl PreservedAnalyses {
    /// Nothing survives: every analysis for the changed functions is
    /// invalidated. The safe default for structural passes.
    pub const fn none() -> Self {
        PreservedAnalyses { cfg: false, effects: false, call_graph: false }
    }

    /// Everything survives (the implicit contract of a pass application
    /// that changed nothing).
    pub const fn all() -> Self {
        PreservedAnalyses { cfg: true, effects: true, call_graph: true }
    }

    /// Also preserve per-function CFG facts (the pass does not add, remove,
    /// or re-target blocks).
    pub const fn plus_cfg(mut self) -> Self {
        self.cfg = true;
        self
    }

    /// Also preserve the effect summary (the pass does not add or remove
    /// loads, stores, or calls).
    pub const fn plus_effects(mut self) -> Self {
        self.effects = true;
        self
    }

    /// Also preserve the call graph (the pass does not add, remove, or
    /// redirect call instructions — dropping *arguments* is fine).
    pub const fn plus_call_graph(mut self) -> Self {
        self.call_graph = true;
        self
    }

    /// Are per-function CFG facts still valid?
    pub const fn cfg(&self) -> bool {
        self.cfg
    }

    /// Is the effect summary still valid?
    pub const fn effects(&self) -> bool {
        self.effects
    }

    /// Is the call graph still valid?
    pub const fn call_graph(&self) -> bool {
        self.call_graph
    }
}

/// Per-function CFG/dominance facts, computed together because their
/// consumers (GVN's dominator-scoped value table) want all three.
#[derive(Clone, Debug)]
pub struct CfgFacts {
    /// `reachable[b]` — is block `b` reachable from the entry?
    pub reachable: Vec<bool>,
    /// `preds[b]` — predecessor blocks of block `b`.
    pub preds: Vec<Vec<BlockId>>,
    /// `idom[b]` — immediate dominator of block `b` (entry and unreachable
    /// blocks have none).
    pub idom: Vec<Option<BlockId>>,
}

impl CfgFacts {
    /// Computes all facts for one function.
    pub fn compute(func: &crate::Function) -> Self {
        CfgFacts {
            reachable: reachable_blocks(func),
            preds: predecessors(func),
            idom: immediate_dominators(func),
        }
    }
}

/// Cache-traffic counters for one [`AnalysisManager`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisCacheStats {
    /// Requests served from cache.
    pub hits: u64,
    /// Requests that had to (re)compute the analysis.
    pub computes: u64,
    /// Cached analyses dropped by invalidation.
    pub invalidations: u64,
}

/// Lazily computes, caches, and invalidates the analyses the pass pipeline
/// consumes. See the [module docs](self) for the analysis inventory and
/// the preservation contract.
#[derive(Debug, Default)]
pub struct AnalysisManager {
    effects: Option<EffectSummary>,
    effects_frozen: bool,
    cfg: Vec<Option<CfgFacts>>,
    callers: Option<Vec<Vec<FuncId>>>,
    stats: AnalysisCacheStats,
}

impl AnalysisManager {
    /// An empty manager: every first request computes.
    pub fn new() -> Self {
        Self::default()
    }

    /// A manager pre-seeded with a *frozen* effect summary: invalidations
    /// never drop it. The standard pipeline computes the summary on the
    /// pristine module so that a callee's inferred purity cannot change
    /// with inlining decisions made elsewhere (§3.2 exactness).
    pub fn with_frozen_effects(summary: EffectSummary) -> Self {
        AnalysisManager { effects: Some(summary), effects_frozen: true, ..Default::default() }
    }

    /// Freezes whatever effect summary is (or next gets) cached: later
    /// invalidations keep it. This reproduces the historical whole-module
    /// sweep semantics, where a pass computed its summary once at the start
    /// of a sweep and kept using it while mutating.
    pub fn freeze_effects(&mut self) {
        self.effects_frozen = true;
    }

    /// The module's effect summary, computing it on first use.
    pub fn effects(&mut self, module: &Module) -> &EffectSummary {
        if self.effects.is_none() {
            self.stats.computes += 1;
            self.effects = Some(EffectSummary::compute(module));
        } else {
            self.stats.hits += 1;
        }
        self.effects.as_ref().expect("just filled")
    }

    /// CFG/dominance facts for `fid`, computing them on first use.
    pub fn cfg_facts(&mut self, module: &Module, fid: FuncId) -> &CfgFacts {
        if self.cfg.len() < module.func_count() {
            self.cfg.resize_with(module.func_count(), || None);
        }
        let slot = &mut self.cfg[fid.index()];
        if slot.is_none() {
            self.stats.computes += 1;
            *slot = Some(CfgFacts::compute(module.func(fid)));
        } else {
            self.stats.hits += 1;
        }
        slot.as_ref().expect("just filled")
    }

    /// The caller map: `callers(m)[callee.index()]` lists every function
    /// with at least one call to `callee` (including `callee` itself when
    /// recursive), sorted and deduplicated. Computed on first use.
    ///
    /// While only edge-*removing* passes run, a cached map is a safe
    /// over-approximation; passes that add or redirect calls must not
    /// declare the call graph preserved.
    pub fn callers(&mut self, module: &Module) -> &[Vec<FuncId>] {
        if self.callers.is_none() {
            self.stats.computes += 1;
            let mut map: Vec<Vec<FuncId>> = vec![Vec::new(); module.func_count()];
            for (caller, func) in module.iter_funcs() {
                for (_, callee) in func.call_edges() {
                    map[callee.index()].push(caller);
                }
            }
            for callers in &mut map {
                callers.sort_unstable();
                callers.dedup();
            }
            self.callers = Some(map);
        } else {
            self.stats.hits += 1;
        }
        self.callers.as_ref().expect("just filled")
    }

    /// Drops whatever `preserved` does not cover for a function a pass just
    /// changed. CFG facts are per-function; the effect summary and call
    /// graph are module-keyed and dropped wholesale.
    pub fn invalidate_function(&mut self, fid: FuncId, preserved: PreservedAnalyses) {
        if !preserved.cfg() {
            if let Some(slot) = self.cfg.get_mut(fid.index()) {
                if slot.take().is_some() {
                    self.stats.invalidations += 1;
                }
            }
        }
        if !preserved.effects() && !self.effects_frozen && self.effects.take().is_some() {
            self.stats.invalidations += 1;
        }
        if !preserved.call_graph() && self.callers.take().is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Drops every cached analysis (frozen effect summaries survive).
    pub fn invalidate_all(&mut self) {
        for slot in &mut self.cfg {
            if slot.take().is_some() {
                self.stats.invalidations += 1;
            }
        }
        if !self.effects_frozen && self.effects.take().is_some() {
            self.stats.invalidations += 1;
        }
        if self.callers.take().is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Cache-traffic counters so far.
    pub fn stats(&self) -> AnalysisCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FuncBuilder, Linkage};

    fn module_with_call() -> (Module, FuncId, FuncId) {
        let mut m = Module::new("m");
        let callee = m.declare_function("callee", 1, Linkage::Internal);
        let main = m.declare_function("main", 0, Linkage::Public);
        {
            let mut b = FuncBuilder::new(&mut m, callee);
            let p = b.param(0);
            b.ret(Some(p));
        }
        {
            let mut b = FuncBuilder::new(&mut m, main);
            let x = b.iconst(1);
            let v = b.call(callee, &[x]);
            b.ret(v);
        }
        (m, callee, main)
    }

    #[test]
    fn analyses_are_computed_once_and_hit_after() {
        let (m, _, main) = module_with_call();
        let mut am = AnalysisManager::new();
        am.cfg_facts(&m, main);
        am.cfg_facts(&m, main);
        am.effects(&m);
        am.effects(&m);
        am.callers(&m);
        am.callers(&m);
        let s = am.stats();
        assert_eq!(s.computes, 3);
        assert_eq!(s.hits, 3);
        assert_eq!(s.invalidations, 0);
    }

    #[test]
    fn invalidation_honours_the_preservation_contract() {
        let (m, _, main) = module_with_call();
        let mut am = AnalysisManager::new();
        am.cfg_facts(&m, main);
        am.effects(&m);
        am.callers(&m);
        // A CFG-preserving change keeps the facts but drops the rest.
        am.invalidate_function(main, PreservedAnalyses::none().plus_cfg());
        am.cfg_facts(&m, main);
        let s = am.stats();
        assert_eq!(s.invalidations, 2, "effects + call graph dropped");
        assert_eq!(s.hits, 1, "cfg facts survived");
    }

    #[test]
    fn cfg_invalidation_is_per_function() {
        let (m, callee, main) = module_with_call();
        let mut am = AnalysisManager::new();
        am.cfg_facts(&m, callee);
        am.cfg_facts(&m, main);
        am.invalidate_function(main, PreservedAnalyses::none());
        am.cfg_facts(&m, callee); // hit
        am.cfg_facts(&m, main); // recompute
        let s = am.stats();
        assert_eq!(s.computes, 3);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn frozen_effects_survive_invalidation() {
        let (m, callee, main) = module_with_call();
        let summary = EffectSummary::compute(&m);
        let mut am = AnalysisManager::with_frozen_effects(summary);
        am.effects(&m);
        am.invalidate_function(main, PreservedAnalyses::none());
        am.invalidate_all();
        am.effects(&m);
        assert_eq!(am.stats().computes, 0, "frozen summary is never recomputed");
        let _ = callee;
    }

    #[test]
    fn caller_map_covers_recursion_and_dedups() {
        let mut m = Module::new("m");
        let f = m.declare_function("f", 1, Linkage::Internal);
        let main = m.declare_function("main", 0, Linkage::Public);
        {
            let mut b = FuncBuilder::new(&mut m, f);
            let p = b.param(0);
            let a = b.call(f, &[p]).unwrap();
            let bb = b.call(f, &[a]).unwrap();
            b.ret(Some(bb));
        }
        {
            let mut b = FuncBuilder::new(&mut m, main);
            let x = b.iconst(0);
            let v = b.call(f, &[x]);
            b.ret(v);
        }
        let mut am = AnalysisManager::new();
        let callers = am.callers(&m);
        assert_eq!(callers[f.index()], vec![f, main]);
        assert!(callers[main.index()].is_empty());
    }
}
