//! Component slices: self-contained sub-modules covering a subset of a
//! module's functions.
//!
//! [`extract_slice`] clones a *call-closed* set of functions (every call
//! edge from a member stays inside the set) into a fresh [`Module`],
//! renumbering [`FuncId`]s densely while keeping every other identifier —
//! globals, call sites, values, blocks — exactly as in the source. The
//! incremental evaluator in `optinline-core` compiles such slices
//! independently; the identifier stability is what makes per-slice results
//! byte-comparable with a whole-module compile.

use crate::ids::FuncId;
use crate::inst::Inst;
use crate::module::Module;
use std::collections::{BTreeMap, BTreeSet};

/// Extracts the sub-module induced by `funcs`.
///
/// The slice contains clones of the selected functions (declared in
/// ascending original-id order, so the renumbering old→new is monotone),
/// *all* of the source module's globals under unchanged [`GlobalId`]s, and
/// the source's call-site id space (so [`CallSiteId`]s in the slice mean
/// the same call sites as in the source). Call instructions are rewritten
/// to the new [`FuncId`]s, including their `inline_path` provenance.
///
/// # Panics
///
/// Panics if `funcs` is not call-closed, i.e. some member calls (or records
/// an `inline_path` through) a function outside the set. Closedness is the
/// caller's invariant: slices are meant to be built from the connected
/// components of the full call graph.
///
/// [`GlobalId`]: crate::ids::GlobalId
/// [`CallSiteId`]: crate::ids::CallSiteId
pub fn extract_slice(module: &Module, funcs: &BTreeSet<FuncId>) -> Module {
    let mut out = Module::new(module.name.clone());
    for g in module.globals() {
        out.add_global(g.name.clone(), g.init);
    }
    // `funcs` iterates in ascending order, so new ids are dense and monotone.
    let remap: BTreeMap<FuncId, FuncId> =
        funcs.iter().enumerate().map(|(new, &old)| (old, FuncId::new(new as u32))).collect();
    for &old in funcs {
        let src = module.func(old);
        let nid = out.declare_function(src.name.clone(), src.param_count(), src.linkage);
        let mut f = src.clone();
        for block in &mut f.blocks {
            for inst in &mut block.insts {
                if let Inst::Call { callee, inline_path, .. } = inst {
                    let translate = |fid: FuncId| {
                        *remap.get(&fid).unwrap_or_else(|| {
                            panic!(
                                "slice of {:?} is not call-closed: {} escapes",
                                funcs,
                                module.func(fid).name
                            )
                        })
                    };
                    *callee = translate(*callee);
                    for step in inline_path.iter_mut() {
                        *step = translate(*step);
                    }
                }
            }
        }
        *out.func_mut(nid) = f;
    }
    out.reserve_call_sites(module.call_site_bound());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::function::Linkage;
    use crate::verify::verify_module;

    /// Two components: {callee, caller} and {lone}; plus a global.
    fn sample() -> Module {
        let mut m = Module::new("m");
        m.add_global("g", 7);
        let callee = m.declare_function("callee", 1, Linkage::Internal);
        let lone = m.declare_function("lone", 0, Linkage::Public);
        let caller = m.declare_function("caller", 0, Linkage::Public);
        {
            let mut b = FuncBuilder::new(&mut m, callee);
            b.ret(None);
        }
        {
            let mut b = FuncBuilder::new(&mut m, lone);
            b.ret(None);
        }
        {
            let mut b = FuncBuilder::new(&mut m, caller);
            let c = b.iconst(3);
            b.call_void(callee, &[c]);
            b.ret(None);
        }
        m
    }

    #[test]
    fn slice_renumbers_functions_and_keeps_everything_else() {
        let m = sample();
        let funcs: BTreeSet<FuncId> = [FuncId::new(0), FuncId::new(2)].into_iter().collect();
        let s = extract_slice(&m, &funcs);
        verify_module(&s).expect("slice verifies");
        assert_eq!(s.func_count(), 2);
        assert_eq!(s.func(FuncId::new(0)).name, "callee");
        assert_eq!(s.func(FuncId::new(1)).name, "caller");
        // Globals and the call-site id space carry over unchanged.
        assert_eq!(s.globals(), m.globals());
        assert_eq!(s.call_site_bound(), m.call_site_bound());
        // The call in `caller` now targets the renumbered callee, under the
        // original site id.
        let sites_m = m.func(FuncId::new(2)).call_edges();
        let sites_s = s.func(FuncId::new(1)).call_edges();
        assert_eq!(sites_m.len(), 1);
        assert_eq!(sites_s.len(), 1);
        assert_eq!(sites_m[0].0, sites_s[0].0);
        assert_eq!(sites_s[0].1, FuncId::new(0));
    }

    #[test]
    fn singleton_slice_of_isolated_function_round_trips() {
        let m = sample();
        let funcs: BTreeSet<FuncId> = [FuncId::new(1)].into_iter().collect();
        let s = extract_slice(&m, &funcs);
        verify_module(&s).expect("slice verifies");
        assert_eq!(s.func_count(), 1);
        assert_eq!(s.func(FuncId::new(0)), m.func(FuncId::new(1)));
    }

    #[test]
    #[should_panic(expected = "not call-closed")]
    fn non_closed_slice_panics() {
        let m = sample();
        let funcs: BTreeSet<FuncId> = [FuncId::new(2)].into_iter().collect();
        extract_slice(&m, &funcs);
    }
}
