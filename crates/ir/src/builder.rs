//! Ergonomic construction of functions.
//!
//! [`FuncBuilder`] wraps a `(&mut Module, FuncId)` pair and offers
//! append-at-cursor instruction emission:
//!
//! ```
//! use optinline_ir::{Module, Linkage, FuncBuilder, BinOp};
//!
//! let mut m = Module::new("demo");
//! let double = m.declare_function("double", 1, Linkage::Internal);
//! let main = m.declare_function("main", 0, Linkage::Public);
//!
//! {
//!     let mut b = FuncBuilder::new(&mut m, double);
//!     let p = b.param(0);
//!     let r = b.bin(BinOp::Add, p, p);
//!     b.ret(Some(r));
//! }
//! {
//!     let mut b = FuncBuilder::new(&mut m, main);
//!     let x = b.iconst(21);
//!     let y = b.call(double, &[x]);
//!     b.ret(y);
//! }
//! assert_eq!(m.inlinable_sites().len(), 1);
//! ```

use crate::function::Block;
use crate::ids::{BlockId, CallSiteId, FuncId, GlobalId, ValueId};
use crate::inst::{BinOp, Inst, JumpTarget, Terminator};
use crate::module::Module;

/// Builder positioned at the end of a *current block* of one function.
///
/// The builder borrows the module exclusively so that calls can mint fresh
/// [`CallSiteId`]s.
#[derive(Debug)]
pub struct FuncBuilder<'m> {
    module: &'m mut Module,
    func: FuncId,
    cursor: BlockId,
}

impl<'m> FuncBuilder<'m> {
    /// Creates a builder positioned at the entry block of `func`.
    pub fn new(module: &'m mut Module, func: FuncId) -> Self {
        FuncBuilder { module, func, cursor: BlockId::new(0) }
    }

    /// The function being built.
    pub fn func_id(&self) -> FuncId {
        self.func
    }

    /// The block instructions are currently appended to.
    pub fn cursor(&self) -> BlockId {
        self.cursor
    }

    /// Moves the cursor to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cursor = block;
    }

    /// Returns the `i`-th function parameter.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> ValueId {
        self.module.func(self.func).params()[i]
    }

    /// Creates a new block with `n_params` fresh parameters; returns the
    /// block id and its parameter values. Does not move the cursor.
    pub fn new_block(&mut self, n_params: usize) -> (BlockId, Vec<ValueId>) {
        let f = self.module.func_mut(self.func);
        let params: Vec<ValueId> = (0..n_params).map(|_| f.new_value()).collect();
        let id = f.add_block(params.clone());
        (id, params)
    }

    fn push(&mut self, inst: Inst) {
        let cursor = self.cursor;
        self.module.func_mut(self.func).block_mut(cursor).insts.push(inst);
    }

    /// Emits `dst = const value` and returns `dst`.
    pub fn iconst(&mut self, value: i64) -> ValueId {
        let dst = self.module.func_mut(self.func).new_value();
        self.push(Inst::Const { dst, value });
        dst
    }

    /// Emits `dst = op lhs, rhs` and returns `dst`.
    pub fn bin(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        let dst = self.module.func_mut(self.func).new_value();
        self.push(Inst::Bin { dst, op, lhs, rhs });
        dst
    }

    /// Emits a call whose result is used; returns the result value.
    ///
    /// A fresh [`CallSiteId`] is minted.
    pub fn call(&mut self, callee: FuncId, args: &[ValueId]) -> Option<ValueId> {
        let dst = self.module.func_mut(self.func).new_value();
        let site = self.module.new_call_site();
        self.push(Inst::Call {
            dst: Some(dst),
            callee,
            args: args.to_vec(),
            site,
            inline_path: vec![],
        });
        Some(dst)
    }

    /// Emits a call discarding the result.
    pub fn call_void(&mut self, callee: FuncId, args: &[ValueId]) -> CallSiteId {
        let site = self.module.new_call_site();
        self.push(Inst::Call { dst: None, callee, args: args.to_vec(), site, inline_path: vec![] });
        site
    }

    /// Emits a call whose result is used and also returns the minted site id.
    pub fn call_with_site(&mut self, callee: FuncId, args: &[ValueId]) -> (ValueId, CallSiteId) {
        let dst = self.module.func_mut(self.func).new_value();
        let site = self.module.new_call_site();
        self.push(Inst::Call {
            dst: Some(dst),
            callee,
            args: args.to_vec(),
            site,
            inline_path: vec![],
        });
        (dst, site)
    }

    /// Emits `dst = load @g`.
    pub fn load(&mut self, global: GlobalId) -> ValueId {
        let dst = self.module.func_mut(self.func).new_value();
        self.push(Inst::Load { dst, global });
        dst
    }

    /// Emits `store @g, src`.
    pub fn store(&mut self, global: GlobalId, src: ValueId) {
        self.push(Inst::Store { global, src });
    }

    fn set_term(&mut self, term: Terminator) {
        let cursor = self.cursor;
        self.module.func_mut(self.func).block_mut(cursor).term = term;
    }

    /// Terminates the current block with `jump target(args)` and moves the
    /// cursor to `target`.
    pub fn jump(&mut self, target: BlockId, args: &[ValueId]) {
        self.set_term(Terminator::Jump(JumpTarget::with_args(target, args.to_vec())));
        self.cursor = target;
    }

    /// Terminates the current block with a conditional branch. The cursor is
    /// left unchanged; use [`switch_to`](Self::switch_to) to continue.
    pub fn branch(
        &mut self,
        cond: ValueId,
        then_to: BlockId,
        then_args: &[ValueId],
        else_to: BlockId,
        else_args: &[ValueId],
    ) {
        self.set_term(Terminator::Branch {
            cond,
            then_to: JumpTarget::with_args(then_to, then_args.to_vec()),
            else_to: JumpTarget::with_args(else_to, else_args.to_vec()),
        });
    }

    /// Terminates the current block with `ret [value]`.
    pub fn ret(&mut self, value: Option<ValueId>) {
        self.set_term(Terminator::Return(value));
    }

    /// Direct access to the block being built (escape hatch).
    pub fn current_block_mut(&mut self) -> &mut Block {
        let cursor = self.cursor;
        self.module.func_mut(self.func).block_mut(cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Linkage;

    #[test]
    fn builds_straight_line_function() {
        let mut m = Module::new("m");
        let f = m.declare_function("f", 2, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let x = b.param(0);
        let y = b.param(1);
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s));
        let f = m.func(f);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].insts.len(), 1);
        assert_eq!(f.blocks[0].term, Terminator::Return(Some(s)));
    }

    #[test]
    fn builds_diamond_cfg() {
        let mut m = Module::new("m");
        let f = m.declare_function("f", 1, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let p = b.param(0);
        let (then_b, _) = b.new_block(0);
        let (else_b, _) = b.new_block(0);
        let (join, join_params) = b.new_block(1);
        b.branch(p, then_b, &[], else_b, &[]);
        b.switch_to(then_b);
        let one = b.iconst(1);
        b.jump(join, &[one]);
        b.switch_to(else_b);
        let two = b.iconst(2);
        b.jump(join, &[two]);
        b.switch_to(join);
        b.ret(Some(join_params[0]));
        let f = m.func(f);
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.blocks[join.index()].params.len(), 1);
    }

    #[test]
    fn calls_mint_distinct_sites() {
        let mut m = Module::new("m");
        let callee = m.declare_function("callee", 0, Linkage::Internal);
        let f = m.declare_function("f", 0, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let s0 = b.call_void(callee, &[]);
        let s1 = b.call_void(callee, &[]);
        b.ret(None);
        assert_ne!(s0, s1);
        assert_eq!(m.func(f).call_sites(), vec![s0, s1]);
    }

    #[test]
    fn loads_and_stores_touch_globals() {
        let mut m = Module::new("m");
        let g = m.add_global("g", 0);
        let f = m.declare_function("f", 0, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let v = b.load(g);
        b.store(g, v);
        b.ret(None);
        assert_eq!(m.func(f).inst_count(), 2);
    }
}
