//! Cooperative cancellation for long-running evaluations.
//!
//! A [`CancelToken`] is a shared flag a *requester* sets and a *worker*
//! polls. Workers don't thread the token through every call — they
//! install it in a thread-local with [`install`] and sprinkle
//! [`checkpoint`] calls at round boundaries (pass-manager rounds, tree
//! partitions, DAG tasks). When the installed token is cancelled, the
//! next checkpoint panics with a [`Cancelled`] payload; whoever wrapped
//! the evaluation in `catch_unwind` (the serve executor does) downcasts
//! the payload to tell "cancelled" apart from a genuine panic.
//!
//! Unwinding is safe at every checkpoint because all three evaluation
//! drivers already contain panics for fault tolerance: the worker pool's
//! `join`/`map` resurface a closure panic only after every borrowed job
//! has settled, and the DAG runner catches per-task panics into an
//! abort flag.
//!
//! One subtlety: a worker that *helps* — steals queued jobs belonging to
//! other requests while waiting for its own — must not apply its own
//! request's token to stolen work. [`suspend`] masks the thread-local
//! for exactly that window.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag: set once by the requester, polled by
/// [`checkpoint`] on worker threads that [`install`]ed a clone.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation: every installed clone's next
    /// [`checkpoint`] will unwind with [`Cancelled`].
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// The panic payload [`checkpoint`] unwinds with. Downcast the payload
/// of a caught panic to `Cancelled` to distinguish cooperative
/// cancellation from a real bug.
#[derive(Debug)]
pub struct Cancelled;

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Restores the thread's previous token (or suspension) on drop.
#[derive(Debug)]
pub struct InstallGuard {
    prev: Option<Option<CancelToken>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// Installs `token` as this thread's checkpoint target for the guard's
/// lifetime. Nesting restores the previous token on drop.
pub fn install(token: CancelToken) -> InstallGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(token));
    InstallGuard { prev: Some(prev) }
}

/// Masks this thread's installed token for the guard's lifetime: used
/// around *stolen* work, so a helper running another request's job
/// cannot cancel it with its own request's token.
pub fn suspend() -> InstallGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().take());
    InstallGuard { prev: Some(prev) }
}

/// Polls this thread's installed token; unwinds with [`Cancelled`] if
/// it has been cancelled. A no-op (one thread-local read) on threads
/// with no token installed — in-process evaluations never pay for the
/// serving layer's cancellation.
#[inline]
pub fn checkpoint() {
    let cancelled =
        CURRENT.with(|c| c.borrow().as_ref().map(CancelToken::is_cancelled).unwrap_or(false));
    if cancelled {
        std::panic::panic_any(Cancelled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_is_a_no_op_without_a_token() {
        checkpoint();
    }

    #[test]
    fn cancelled_token_unwinds_the_next_checkpoint() {
        let token = CancelToken::new();
        let _guard = install(token.clone());
        checkpoint();
        token.cancel();
        let err = std::panic::catch_unwind(checkpoint).unwrap_err();
        assert!(err.downcast_ref::<Cancelled>().is_some(), "payload is Cancelled");
    }

    #[test]
    fn suspend_masks_the_token_and_drop_restores_it() {
        let token = CancelToken::new();
        token.cancel();
        let _guard = install(token.clone());
        {
            let _mask = suspend();
            checkpoint();
        }
        assert!(std::panic::catch_unwind(checkpoint).is_err(), "restored after mask");
    }

    #[test]
    fn install_nesting_restores_the_outer_token() {
        let outer = CancelToken::new();
        outer.cancel();
        let _g1 = install(outer);
        {
            let _g2 = install(CancelToken::new());
            checkpoint();
        }
        assert!(std::panic::catch_unwind(checkpoint).is_err(), "outer token back in force");
    }
}
