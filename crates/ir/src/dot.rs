//! Graphviz (DOT) rendering of function CFGs — the debugging view for
//! everything the optimizer and inliner do to a function's shape.

use crate::function::Function;
use crate::ids::FuncId;
use crate::inst::Terminator;
use crate::module::Module;
use std::fmt::Write as _;

/// Renders one function's control-flow graph as DOT. Block nodes list their
/// parameters and instructions; edges are labelled with branch direction
/// and block arguments.
pub fn function_cfg_dot(module: &Module, fid: FuncId) -> String {
    let func: &Function = module.func(fid);
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", func.name);
    let _ = writeln!(out, "  node [shape=record, fontname=\"monospace\"];");
    for (bid, block) in func.iter_blocks() {
        let mut label = String::new();
        let _ = write!(label, "{bid}(");
        for (i, p) in block.params.iter().enumerate() {
            if i > 0 {
                label.push_str(", ");
            }
            let _ = write!(label, "{p}");
        }
        label.push_str("):");
        for inst in &block.insts {
            let _ = write!(label, "\\l  {}", module.display_inst(inst));
        }
        match &block.term {
            Terminator::Return(Some(v)) => {
                let _ = write!(label, "\\l  ret {v}");
            }
            Terminator::Return(None) => label.push_str("\\l  ret"),
            Terminator::Unreachable => label.push_str("\\l  unreachable"),
            _ => {}
        }
        label.push_str("\\l");
        // Record labels must escape braces and pipes.
        let escaped = label.replace('{', "\\{").replace('}', "\\}").replace('|', "\\|");
        let _ = writeln!(out, "  {bid} [label=\"{escaped}\"];");
    }
    for (bid, block) in func.iter_blocks() {
        match &block.term {
            Terminator::Jump(t) => {
                let _ = writeln!(out, "  {bid} -> {};", t.block);
            }
            Terminator::Branch { then_to, else_to, .. } => {
                let _ = writeln!(out, "  {bid} -> {} [label=\"T\"];", then_to.block);
                let _ = writeln!(out, "  {bid} -> {} [label=\"F\"];", else_to.block);
            }
            _ => {}
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::function::Linkage;
    use crate::inst::BinOp;

    #[test]
    fn renders_blocks_and_edges() {
        let mut m = Module::new("m");
        let f = m.declare_function("f", 1, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let p = b.param(0);
        let (t, _) = b.new_block(0);
        let (e, _) = b.new_block(0);
        b.branch(p, t, &[], e, &[]);
        b.switch_to(t);
        let v = b.bin(BinOp::Add, p, p);
        b.ret(Some(v));
        b.switch_to(e);
        b.ret(Some(p));
        let dot = function_cfg_dot(&m, f);
        assert!(dot.contains("digraph \"f\""));
        assert!(dot.contains("b0 -> b1 [label=\"T\"]"));
        assert!(dot.contains("b0 -> b2 [label=\"F\"]"));
        assert!(dot.contains("add v0, v0"));
    }

    #[test]
    fn straight_line_functions_have_no_edges() {
        let mut m = Module::new("m");
        let f = m.declare_function("g", 0, Linkage::Public);
        let mut b = FuncBuilder::new(&mut m, f);
        let c = b.iconst(1);
        b.ret(Some(c));
        let dot = function_cfg_dot(&m, f);
        assert!(!dot.contains("->"));
        assert!(dot.contains("ret v0"));
    }
}
