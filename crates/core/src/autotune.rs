//! The local inlining autotuner for size (§5, Algorithm 3).
//!
//! One round: starting from a base configuration, flip each site's label
//! independently against the *same* base, measure, and keep exactly the
//! flips that shrink the binary. All probes are independent, so a round is
//! embarrassingly parallel and costs `n + 2` compilations (`n` probes, the
//! base, and the combined result).
//!
//! Variants from §5.1:
//! - **clean slate** — base = everything no-inline;
//! - **heuristic-initialized** — base = the baseline compiler's decisions
//!   (the paper's "LLVM-initialized" mode);
//! - **round-based** — each round starts from the previous round's output,
//!   extending the effective scope to non-local configurations;
//! - **combined** — best of several runs (the paper combines clean-slate
//!   and LLVM-initialized results per file).

use crate::config::InliningConfiguration;
use crate::evaluator::Evaluator;
use crate::measure::Objective;
use crate::pareto::ParetoFront;
use optinline_ir::CallSiteId;
use std::collections::BTreeSet;

/// Report for one autotuning round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundReport {
    /// 1-based round number.
    pub round: usize,
    /// The round's output configuration.
    pub config: InliningConfiguration,
    /// Size of the output configuration.
    pub size: u64,
    /// Size of the round's base configuration.
    pub base_size: u64,
    /// Number of flips kept.
    pub flips: usize,
    /// Compilations this round would cost uncached: `n + 2`.
    pub evaluations: u128,
}

/// A full autotuning session (one or more rounds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TuneOutcome {
    /// Per-round reports, in order.
    pub rounds: Vec<RoundReport>,
}

impl TuneOutcome {
    /// The best configuration across all rounds (sizes can regress between
    /// rounds — Table 4 of the paper — so "last" is not always "best").
    pub fn best(&self) -> &RoundReport {
        self.rounds
            .iter()
            .min_by_key(|r| (r.size, r.round))
            .expect("a session has at least one round")
    }

    /// The final round's report.
    pub fn last(&self) -> &RoundReport {
        self.rounds.last().expect("a session has at least one round")
    }

    /// Total evaluation cost (`R * (n + 2)` when no round exits early).
    pub fn total_evaluations(&self) -> u128 {
        self.rounds.iter().map(|r| r.evaluations).sum()
    }
}

/// Outcome of a Pareto-front tuning session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParetoOutcome {
    /// The final front.
    pub front: ParetoFront,
    /// Rounds actually run (early exit on a round that adds no point).
    pub rounds: usize,
    /// Distinct configurations measured.
    pub evaluations: u128,
}

/// The autotuner (Algorithm 3 plus the §5.1 variations).
pub struct Autotuner<'e> {
    evaluator: &'e dyn Evaluator,
    sites: BTreeSet<CallSiteId>,
    parallel: bool,
}

impl std::fmt::Debug for Autotuner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Autotuner")
            .field("sites", &self.sites.len())
            .field("parallel", &self.parallel)
            .finish()
    }
}

impl<'e> Autotuner<'e> {
    /// Creates an autotuner over the given site domain.
    pub fn new(evaluator: &'e dyn Evaluator, sites: BTreeSet<CallSiteId>) -> Self {
        Autotuner { evaluator, sites, parallel: true }
    }

    /// Disables probe parallelism (deterministic ordering for debugging;
    /// results are identical either way because probes are independent).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Runs one round against `base` (Algorithm 3 generalized to an
    /// arbitrary base): each site is flipped independently; flips that
    /// strictly shrink the binary are kept.
    pub fn tune_round(&self, base: &InliningConfiguration) -> (InliningConfiguration, usize) {
        let base_size = self.evaluator.size_of(base);
        let probe = |&site: &CallSiteId| -> Option<CallSiteId> {
            let mut flipped = base.clone();
            flipped.flip(site);
            (self.evaluator.size_of(&flipped) < base_size).then_some(site)
        };
        let keep: Vec<CallSiteId> = if self.parallel {
            // Probes fan out over the worker pool's shared atomic cursor:
            // unlike static chunking, a thread whose probes all hit the memo
            // cache immediately claims more, so one expensive chunk cannot
            // serialize the round. Per-index result slots keep the kept-flip
            // order deterministic (site order, as in the sequential path).
            let sites: Vec<CallSiteId> = self.sites.iter().copied().collect();
            crate::pool::WorkerPool::global().map(&sites, probe).into_iter().flatten().collect()
        } else {
            self.sites.iter().filter_map(probe).collect()
        };
        let mut tuned = base.clone();
        for site in &keep {
            tuned.flip(*site);
        }
        (tuned, keep.len())
    }

    /// Runs up to `rounds` rounds starting from `init`, stopping early at a
    /// fixpoint (a round with zero kept flips).
    pub fn run(&self, init: InliningConfiguration, rounds: usize) -> TuneOutcome {
        assert!(rounds >= 1, "at least one round is required");
        let mut reports = Vec::new();
        let mut base = init;
        for round in 1..=rounds {
            optinline_ir::cancel::checkpoint();
            let base_size = self.evaluator.size_of(&base);
            let (tuned, flips) = self.tune_round(&base);
            let size = self.evaluator.size_of(&tuned);
            reports.push(RoundReport {
                round,
                config: tuned.clone(),
                size,
                base_size,
                flips,
                evaluations: self.sites.len() as u128 + 2,
            });
            if flips == 0 {
                break;
            }
            base = tuned;
        }
        TuneOutcome { rounds: reports }
    }

    /// The paper's clean-slate session.
    pub fn clean_slate(&self, rounds: usize) -> TuneOutcome {
        self.run(InliningConfiguration::clean_slate(), rounds)
    }

    /// Incremental round-based tuning (the §6 scalability extension): after
    /// round one, only sites in call-graph components whose configuration
    /// changed in the previous round are re-probed.
    ///
    /// Under the independence property (§3.2), a probe's local size delta
    /// only depends on decisions within its own component, so skipping
    /// untouched components is **exact**: the outcome equals [`run`]'s,
    /// round for round, at a fraction of the evaluations (the per-round
    /// [`RoundReport::evaluations`] records the smaller probe counts).
    ///
    /// `components` partitions the site domain (see [`site_components`]);
    /// sites missing from every part are probed every round,
    /// conservatively.
    ///
    /// [`run`]: Autotuner::run
    pub fn run_incremental(
        &self,
        components: &[BTreeSet<CallSiteId>],
        init: InliningConfiguration,
        rounds: usize,
    ) -> TuneOutcome {
        assert!(rounds >= 1, "at least one round is required");
        let component_of = |site: CallSiteId| -> Option<usize> {
            components.iter().position(|c| c.contains(&site))
        };
        let mut dirty: BTreeSet<Option<usize>> =
            self.sites.iter().map(|&s| component_of(s)).collect();
        let mut reports = Vec::new();
        let mut base = init;
        for round in 1..=rounds {
            optinline_ir::cancel::checkpoint();
            let base_size = self.evaluator.size_of(&base);
            let probe_sites: BTreeSet<CallSiteId> = self
                .sites
                .iter()
                .copied()
                .filter(|&s| {
                    let c = component_of(s);
                    c.is_none() || dirty.contains(&c)
                })
                .collect();
            let sub = Autotuner {
                evaluator: self.evaluator,
                sites: probe_sites.clone(),
                parallel: self.parallel,
            };
            let (tuned, flips) = sub.tune_round(&base);
            let size = self.evaluator.size_of(&tuned);
            // Only components that changed this round can yield new flips
            // next round.
            dirty = probe_sites
                .iter()
                .filter(|&&s| tuned.decision(s) != base.decision(s))
                .map(|&s| component_of(s))
                .collect();
            reports.push(RoundReport {
                round,
                config: tuned.clone(),
                size,
                base_size,
                flips,
                evaluations: probe_sites.len() as u128 + 2,
            });
            if flips == 0 {
                break;
            }
            base = tuned;
        }
        TuneOutcome { rounds: reports }
    }

    /// Runtime-guarded tuning (the §6 "balance between performance and code
    /// size" direction): a flip is kept only if it strictly shrinks the
    /// binary AND does not slow the program beyond `budget` (relative to
    /// the round's base, e.g. `1.02` allows a 2% regression).
    ///
    /// `cycles_of` measures a configuration's runtime (simulated cycles);
    /// returning `None` (e.g. no executable entry) disables the guard for
    /// that probe. Probes run sequentially — runtime measurement is the
    /// dominant cost and callers usually want it deterministic.
    pub fn run_guarded(
        &self,
        init: InliningConfiguration,
        rounds: usize,
        cycles_of: &dyn Fn(&InliningConfiguration) -> Option<u64>,
        budget: f64,
    ) -> TuneOutcome {
        assert!(rounds >= 1, "at least one round is required");
        assert!(budget >= 1.0, "a budget below 1.0 would reject no-ops");
        let mut reports = Vec::new();
        let mut base = init;
        for round in 1..=rounds {
            optinline_ir::cancel::checkpoint();
            let base_size = self.evaluator.size_of(&base);
            let base_cycles = cycles_of(&base);
            let mut keep = Vec::new();
            for &site in &self.sites {
                let mut flipped = base.clone();
                flipped.flip(site);
                if self.evaluator.size_of(&flipped) >= base_size {
                    continue;
                }
                let ok_runtime = match (base_cycles, cycles_of(&flipped)) {
                    (Some(b), Some(f)) => f as f64 <= b as f64 * budget,
                    _ => true,
                };
                if ok_runtime {
                    keep.push(site);
                }
            }
            let mut tuned = base.clone();
            for &site in &keep {
                tuned.flip(site);
            }
            let size = self.evaluator.size_of(&tuned);
            reports.push(RoundReport {
                round,
                config: tuned.clone(),
                size,
                base_size,
                flips: keep.len(),
                evaluations: self.sites.len() as u128 + 2,
            });
            if keep.is_empty() {
                break;
            }
            base = tuned;
        }
        TuneOutcome { rounds: reports }
    }

    /// Multi-objective tuning: grow a Pareto front of (size, cycles) by
    /// local flips. Every frontier configuration is probed one flip in
    /// every direction; non-dominated probes join the front and seed the
    /// next round. Stops at `rounds`, or earlier once a whole round adds
    /// nothing. `inits` seeds the front (the clean slate when empty).
    ///
    /// Deterministic and insertion-order-independent: sites are probed in
    /// id order from frontier points in sorted order, each distinct
    /// canonical configuration is measured exactly once (the `visited`
    /// set), and the front's tie rule is lexicographic. Two runs — or a
    /// direct run and a daemon-routed one — produce identical fronts.
    pub fn run_pareto(
        &self,
        inits: impl IntoIterator<Item = InliningConfiguration>,
        rounds: usize,
    ) -> ParetoOutcome {
        assert!(rounds >= 1, "at least one round is required");
        let canonical = |config: &InliningConfiguration| -> Vec<CallSiteId> {
            config.inlined_sites().intersection(&self.sites).copied().collect()
        };
        let mut visited: BTreeSet<Vec<CallSiteId>> = BTreeSet::new();
        let mut front = ParetoFront::new();
        let mut evaluations = 0u128;
        let mut seeds: Vec<InliningConfiguration> = inits.into_iter().collect();
        if seeds.is_empty() {
            seeds.push(InliningConfiguration::clean_slate());
        }
        for seed in seeds {
            if visited.insert(canonical(&seed)) {
                evaluations += 1;
                let measured = self.evaluator.measure(&seed, Objective::Pareto);
                front.insert(seed, measured);
            }
        }
        let mut rounds_run = 0;
        for _ in 0..rounds {
            optinline_ir::cancel::checkpoint();
            rounds_run += 1;
            let bases: Vec<InliningConfiguration> =
                front.points().iter().map(|p| p.config.clone()).collect();
            let mut progressed = false;
            for base in bases {
                for &site in &self.sites {
                    let mut flipped = base.clone();
                    flipped.flip(site);
                    if !visited.insert(canonical(&flipped)) {
                        continue;
                    }
                    evaluations += 1;
                    let measured = self.evaluator.measure(&flipped, Objective::Pareto);
                    if front.insert(flipped, measured) {
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        ParetoOutcome { front, rounds: rounds_run, evaluations }
    }

    /// Best-of combination across several outcomes (per-file `min`, as in
    /// Figures 15/18).
    pub fn combine<'a>(outcomes: impl IntoIterator<Item = &'a TuneOutcome>) -> RoundReport {
        outcomes
            .into_iter()
            .map(|o| o.best())
            .min_by_key(|r| r.size)
            .cloned()
            .expect("combine() requires at least one outcome")
    }
}

/// Partitions a module's inlinable sites by undirected call-graph
/// component — the input [`Autotuner::run_incremental`] needs.
pub fn site_components(module: &optinline_ir::Module) -> Vec<BTreeSet<CallSiteId>> {
    let graph = optinline_callgraph::InlineGraph::from_module(module);
    optinline_callgraph::connected_components(&graph)
        .into_iter()
        .map(|nodes| {
            let set: BTreeSet<_> = nodes.into_iter().collect();
            graph
                .live_edges()
                .into_iter()
                .filter(|(_, a, b)| set.contains(a) || set.contains(b))
                .map(|(s, _, _)| s)
                .collect::<BTreeSet<CallSiteId>>()
        })
        .filter(|sites| !sites.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinline_callgraph::Decision;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A synthetic evaluator over 3 sites with a non-trivial landscape:
    /// size = 100 - 8*[s0] + 5*[s1] - 2*[s2] + 6*[s0][s2]
    /// (s0 good alone, s1 bad, s2 good alone but bad with s0).
    #[derive(Debug, Default)]
    struct Landscape {
        compiles: AtomicU64,
        queries: AtomicU64,
    }

    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    impl Evaluator for Landscape {
        fn size_of(&self, c: &InliningConfiguration) -> u64 {
            self.compiles.fetch_add(1, Ordering::Relaxed);
            self.queries.fetch_add(1, Ordering::Relaxed);
            let b = |i: u32| (c.decision(s(i)) == Decision::Inline) as i64;
            (100 - 8 * b(0) + 5 * b(1) - 2 * b(2) + 6 * b(0) * b(2)) as u64
        }
        fn compilations(&self) -> u64 {
            self.compiles.load(Ordering::Relaxed)
        }
        fn queries(&self) -> u64 {
            self.queries.load(Ordering::Relaxed)
        }
    }

    fn sites() -> BTreeSet<CallSiteId> {
        [s(0), s(1), s(2)].into_iter().collect()
    }

    #[test]
    fn clean_slate_round_keeps_only_improving_flips() {
        let ev = Landscape::default();
        let tuner = Autotuner::new(&ev, sites()).sequential();
        let (tuned, flips) = tuner.tune_round(&InliningConfiguration::clean_slate());
        // s0 (-8) and s2 (-2) improve independently; s1 (+5) does not.
        assert_eq!(flips, 2);
        assert_eq!(tuned.decision(s(0)), Decision::Inline);
        assert_eq!(tuned.decision(s(1)), Decision::NoInline);
        assert_eq!(tuned.decision(s(2)), Decision::Inline);
        // Interaction term: combined result (96) is worse than s0 alone (92)
        // — the local-minimum behaviour the round-based variant fixes.
        assert_eq!(ev.size_of(&tuned), 96);
    }

    #[test]
    fn second_round_escapes_the_interaction_trap() {
        let ev = Landscape::default();
        let tuner = Autotuner::new(&ev, sites()).sequential();
        let out = tuner.clean_slate(4);
        // Round 2 should flip s2 back off: 96 → 92.
        assert!(out.rounds.len() >= 2);
        assert_eq!(out.best().size, 92);
        let best = &out.best().config;
        assert_eq!(best.decision(s(0)), Decision::Inline);
        assert_eq!(best.decision(s(2)), Decision::NoInline);
    }

    #[test]
    fn fixpoint_stops_early() {
        let ev = Landscape::default();
        let tuner = Autotuner::new(&ev, sites()).sequential();
        let out = tuner.clean_slate(10);
        assert!(out.rounds.len() < 10);
        assert_eq!(out.last().flips, 0);
    }

    #[test]
    fn heuristic_initialization_is_respected() {
        let ev = Landscape::default();
        let tuner = Autotuner::new(&ev, sites()).sequential();
        let init: InliningConfiguration =
            [(s(0), Decision::Inline), (s(1), Decision::Inline), (s(2), Decision::Inline)]
                .into_iter()
                .collect();
        let out = tuner.run(init, 4);
        // From all-inline (101): flipping s1 off (-5) and s2 off (-6+2=... )
        // reaches the optimum 92 eventually.
        assert_eq!(out.best().size, 92);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let ev1 = Landscape::default();
        let ev2 = Landscape::default();
        let seq = Autotuner::new(&ev1, sites()).sequential().clean_slate(3);
        let par = Autotuner::new(&ev2, sites()).clean_slate(3);
        assert_eq!(seq.best().size, par.best().size);
        assert_eq!(seq.best().config, par.best().config);
    }

    #[test]
    fn combine_takes_the_per_file_minimum() {
        let ev = Landscape::default();
        let tuner = Autotuner::new(&ev, sites()).sequential();
        let a = tuner.clean_slate(1);
        let b = tuner.clean_slate(4);
        let best = Autotuner::combine([&a, &b]);
        assert_eq!(best.size, 92);
    }

    #[test]
    fn round_evaluation_budget_is_n_plus_2() {
        let ev = Landscape::default();
        let tuner = Autotuner::new(&ev, sites()).sequential();
        let out = tuner.clean_slate(1);
        assert_eq!(out.rounds[0].evaluations, 3 + 2);
    }

    #[test]
    fn empty_site_set_is_a_fixpoint_immediately() {
        let ev = Landscape::default();
        let tuner = Autotuner::new(&ev, BTreeSet::new()).sequential();
        let out = tuner.clean_slate(5);
        assert_eq!(out.rounds.len(), 1);
        assert_eq!(out.last().flips, 0);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_is_rejected() {
        let ev = Landscape::default();
        let tuner = Autotuner::new(&ev, sites());
        tuner.run(InliningConfiguration::clean_slate(), 0);
    }

    #[test]
    fn guarded_tuning_rejects_slow_flips() {
        // Size landscape: s0 and s2 shrink. Runtime model: flipping s2 on
        // doubles the cycles. A 5% budget must keep s0 and reject s2.
        let ev = Landscape::default();
        let tuner = Autotuner::new(&ev, sites()).sequential();
        let cycles = |c: &InliningConfiguration| -> Option<u64> {
            Some(if c.decision(s(2)) == Decision::Inline { 2000 } else { 1000 })
        };
        let guarded = tuner.run_guarded(InliningConfiguration::clean_slate(), 3, &cycles, 1.05);
        let best = &guarded.best().config;
        assert_eq!(best.decision(s(0)), Decision::Inline);
        assert_eq!(best.decision(s(2)), Decision::NoInline);
        // With an unlimited budget the guard is a no-op and s2 is kept in
        // round one (it shrinks size in isolation).
        let free = tuner.run_guarded(InliningConfiguration::clean_slate(), 1, &cycles, f64::MAX);
        assert_eq!(free.rounds[0].config.decision(s(2)), Decision::Inline);
    }

    #[test]
    fn guarded_tuning_without_runtime_signal_matches_plain() {
        let ev1 = Landscape::default();
        let ev2 = Landscape::default();
        let plain = Autotuner::new(&ev1, sites()).sequential().clean_slate(3);
        let guarded = Autotuner::new(&ev2, sites()).sequential().run_guarded(
            InliningConfiguration::clean_slate(),
            3,
            &|_| None,
            1.0,
        );
        assert_eq!(plain.best().size, guarded.best().size);
        assert_eq!(plain.best().config, guarded.best().config);
    }

    #[test]
    #[should_panic(expected = "budget below 1.0")]
    fn guarded_tuning_rejects_absurd_budgets() {
        let ev = Landscape::default();
        let tuner = Autotuner::new(&ev, sites());
        tuner.run_guarded(InliningConfiguration::clean_slate(), 1, &|_| None, 0.5);
    }

    /// The Landscape's sizes with an adversarial cycle model: every flip
    /// that shrinks the binary slows it down, so the Pareto front must
    /// hold genuine trade-offs.
    #[derive(Debug, Default)]
    struct MeasuredLandscape(Landscape);

    impl Evaluator for MeasuredLandscape {
        fn size_of(&self, c: &InliningConfiguration) -> u64 {
            self.0.size_of(c)
        }
        fn measure(
            &self,
            c: &InliningConfiguration,
            objective: Objective,
        ) -> optinline_ir::Measurement {
            let size = self.size_of(c);
            if !objective.wants_cycles() {
                return optinline_ir::Measurement::size_only(size);
            }
            let b = |i: u32| (c.decision(s(i)) == Decision::Inline) as i64;
            let cycles = (100 + 8 * b(0) - 5 * b(1) + 2 * b(2)) as u64;
            optinline_ir::Measurement::with_cycles(size, cycles)
        }
        fn compilations(&self) -> u64 {
            self.0.compilations()
        }
        fn queries(&self) -> u64 {
            self.0.queries()
        }
    }

    #[test]
    fn pareto_tuning_without_cycles_degenerates_to_size_tuning() {
        // The Landscape's default `measure` is size-only, so dominance is
        // plain size comparison: the front collapses to the optimum the
        // scalar tuner finds.
        let ev = Landscape::default();
        let tuner = Autotuner::new(&ev, sites()).sequential();
        let out = tuner.run_pareto([], 4);
        assert_eq!(out.front.len(), 1);
        assert_eq!(out.front.min_size().unwrap().measurement.size, 92);
        let scalar = Autotuner::new(&Landscape::default(), sites()).sequential().clean_slate(4);
        // Same decisions up to canonical form (explicit vs default
        // NoInline entries differ between the two construction paths).
        assert_eq!(
            out.front.min_size().unwrap().config.inlined_sites(),
            scalar.best().config.inlined_sites()
        );
    }

    #[test]
    fn pareto_tuning_holds_size_cycles_trade_offs() {
        let ev = MeasuredLandscape::default();
        let tuner = Autotuner::new(&ev, sites()).sequential();
        let out = tuner.run_pareto([], 5);
        // Smallest binary: s0 inlined (92 bytes, 108 cycles). Fastest:
        // s1 inlined (105 bytes, 95 cycles). Both must be on the front.
        let sizes: Vec<(u64, Option<u64>)> =
            out.front.points().iter().map(|p| (p.measurement.size, p.measurement.cycles)).collect();
        assert!(sizes.contains(&(92, Some(108))), "{sizes:?}");
        assert!(sizes.contains(&(105, Some(95))), "{sizes:?}");
        assert!(out.front.len() >= 3, "intermediate trade-offs survive: {sizes:?}");
        assert_eq!(out.front.min_size().unwrap().measurement.size, 92);
        assert_eq!(out.front.min_cycles().unwrap().measurement.cycles, Some(95));
        // Every distinct configuration is measured at most once.
        assert!(out.evaluations <= 8, "3 sites span 8 configurations, got {}", out.evaluations);
    }

    #[test]
    fn pareto_tuning_is_reproducible() {
        let run = || {
            let ev = MeasuredLandscape::default();
            Autotuner::new(&ev, sites()).sequential().run_pareto([], 5)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.front, b.front);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.rounds, b.rounds);
    }

    fn landscape_components() -> Vec<BTreeSet<CallSiteId>> {
        // s0 and s2 interact (one component); s1 is alone.
        vec![[s(0), s(2)].into_iter().collect(), [s(1)].into_iter().collect()]
    }

    #[test]
    fn incremental_matches_full_rounds() {
        let ev1 = Landscape::default();
        let ev2 = Landscape::default();
        let full = Autotuner::new(&ev1, sites()).sequential().clean_slate(4);
        let incr = Autotuner::new(&ev2, sites()).sequential().run_incremental(
            &landscape_components(),
            InliningConfiguration::clean_slate(),
            4,
        );
        assert_eq!(full.rounds.len(), incr.rounds.len());
        for (a, b) in full.rounds.iter().zip(&incr.rounds) {
            assert_eq!(a.size, b.size, "round {}", a.round);
            assert_eq!(a.config, b.config, "round {}", a.round);
        }
    }

    #[test]
    fn incremental_probes_fewer_sites_after_round_one() {
        let ev = Landscape::default();
        let incr = Autotuner::new(&ev, sites()).sequential().run_incremental(
            &landscape_components(),
            InliningConfiguration::clean_slate(),
            4,
        );
        assert_eq!(incr.rounds[0].evaluations, 3 + 2);
        // Round 1 flips s0 and s2 (component {0,2}); s1 stays — round 2
        // only re-probes the dirty component.
        assert!(incr.rounds.len() >= 2);
        assert_eq!(incr.rounds[1].evaluations, 2 + 2);
    }

    #[test]
    fn sites_outside_any_component_are_probed_every_round() {
        let ev = Landscape::default();
        // Pass a partition covering only s1: s0/s2 fall outside and must be
        // probed each round regardless.
        let partial: Vec<BTreeSet<CallSiteId>> = vec![[s(1)].into_iter().collect()];
        let incr = Autotuner::new(&ev, sites()).sequential().run_incremental(
            &partial,
            InliningConfiguration::clean_slate(),
            4,
        );
        let full_ev = Landscape::default();
        let full = Autotuner::new(&full_ev, sites()).sequential().clean_slate(4);
        assert_eq!(incr.best().size, full.best().size);
    }
}
