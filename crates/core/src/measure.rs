//! Multi-objective measurement: objectives, cycle measurement, and the
//! speed-objective evaluator adapter.
//!
//! The searches and the autotuner historically minimized one scalar —
//! `.text` bytes. This module generalizes *what* is measured without
//! touching *how* the searches run:
//!
//! - [`Objective`] names what a caller wants optimized: `Size` (the
//!   paper's objective, bit-for-bit the legacy behaviour), `Speed`
//!   (simulated cycles under the interpreter's [`CostModel`]), or
//!   `Pareto` (both, as a dominance front — see
//!   [`ParetoFront`](crate::ParetoFront)).
//! - [`module_cycles`] defines the canonical cycles metric: compile the
//!   whole module, then interpret every public non-stub function with
//!   zero arguments in declaration order and sum their cycle counts
//!   (saturating). Whole-module on purpose: the cost model's i-cache is
//!   global, so the per-component decomposition that is exact for size
//!   is *not* exact for cycles.
//! - [`cost_model_fingerprint`] and [`objective_scope`] extend the
//!   persistent-identity family: cycles-carrying entries live in a scope
//!   derived from the size domain *plus* the cost model, so size-only
//!   and speed measurements never alias in the store or in a shared
//!   [`SearchSession`](crate::SearchSession).
//! - [`SpeedEvaluator`] adapts any measuring evaluator to the plain
//!   [`Evaluator`] interface with cycles as the minimized scalar, so the
//!   inlining-tree search, the DAG executor, and the autotuner run
//!   unchanged against the speed objective.

use crate::config::InliningConfiguration;
use crate::evaluator::{evaluation_identity, Evaluator};
use optinline_callgraph::Fnv128;
use optinline_ir::interp::{CostModel, Interp};
use optinline_ir::{Linkage, Measurement, Module};

/// What a search or tuning run optimizes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize `.text` bytes (the paper's objective; the default, and
    /// byte-identical to the historical scalar path).
    #[default]
    Size,
    /// Minimize simulated cycles under the interpreter's cost model.
    Speed,
    /// Optimize both: maintain the dominance front over (size, cycles).
    Pareto,
}

impl Objective {
    /// Parses a CLI/protocol spelling (`size`, `speed`, `pareto`).
    pub fn parse(s: &str) -> Option<Objective> {
        match s {
            "size" => Some(Objective::Size),
            "speed" => Some(Objective::Speed),
            "pareto" => Some(Objective::Pareto),
            _ => None,
        }
    }

    /// The canonical spelling, also used in protocol encodings.
    pub fn name(self) -> &'static str {
        match self {
            Objective::Size => "size",
            Objective::Speed => "speed",
            Objective::Pareto => "pareto",
        }
    }

    /// Whether measurements under this objective must carry cycles.
    pub fn wants_cycles(self) -> bool {
        !matches!(self, Objective::Size)
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// 128-bit fingerprint of a [`CostModel`]: any knob that can move a cycle
/// count moves the fingerprint. Part of the speed-scope identity, so
/// changing the cost model invalidates cached cycle measurements instead
/// of silently serving stale ones.
pub fn cost_model_fingerprint(cost: &CostModel) -> u128 {
    let mut h = Fnv128::new();
    h.write(format!("{cost:?}").as_bytes());
    h.finish()
}

/// The persistent-store / session-memo scope for measurements under
/// `objective`. Size keeps the evaluator's own domain fingerprint
/// unchanged (warm caches stay warm); cycles-carrying objectives mix in
/// an objective tag and the cost-model fingerprint, so size-only and
/// speed entries can never alias. `Speed` and `Pareto` share one scope:
/// they record the same (size, cycles) measurements.
pub fn objective_scope(memo_scope: u128, objective: Objective, cost: &CostModel) -> u128 {
    if !objective.wants_cycles() {
        return memo_scope;
    }
    evaluation_identity([
        "objective:cycles",
        format!("{memo_scope:032x}").as_str(),
        format!("{:032x}", cost_model_fingerprint(cost)).as_str(),
    ])
}

/// The canonical cycles metric of a compiled module: interpret every
/// public non-stub function with zero-valued arguments, in declaration
/// order, under `cost`, and sum the cycle counts (saturating).
///
/// Functions that fail to execute (unreachable stubs left by DFE, fuel or
/// depth exhaustion) contribute zero — deterministically, since the
/// interpreter is deterministic. Returns `None` when the module has no
/// public non-stub function at all, i.e. nothing executable to measure.
pub fn module_cycles(module: &Module, cost: &CostModel) -> Option<u64> {
    let mut total = 0u64;
    let mut measured = false;
    for (id, func) in module.iter_funcs() {
        if func.linkage != Linkage::Public || module.is_stub(id) {
            continue;
        }
        measured = true;
        let args = vec![0i64; func.param_count()];
        if let Ok(out) = Interp::with_cost(module, cost.clone()).run(id, &args) {
            total = total.saturating_add(out.cycles);
        }
    }
    measured.then_some(total)
}

/// Adapts a measuring evaluator to the speed objective behind the plain
/// [`Evaluator`] interface: `size_of` returns *cycles*, so the inlining
/// tree search, the DAG executor, and the autotuner minimize runtime
/// without a second code path. Ties still resolve by the searches'
/// prefer-not-inlined rule, so speed searches are as deterministic as
/// size searches.
///
/// A module with nothing executable measures `cycles: None`; the adapter
/// falls back to the size scalar there, degrading speed search to size
/// search instead of failing.
#[derive(Debug)]
pub struct SpeedEvaluator<'e, E: Evaluator + ?Sized> {
    inner: &'e E,
    scope: Option<u128>,
}

impl<'e, E: Evaluator + ?Sized> SpeedEvaluator<'e, E> {
    /// Wraps `inner`, deriving the cycles-carrying memo scope from its
    /// domain fingerprint and `cost`.
    pub fn new(inner: &'e E, cost: &CostModel) -> Self {
        let scope = inner.memo_scope().map(|s| objective_scope(s, Objective::Speed, cost));
        SpeedEvaluator { inner, scope }
    }
}

impl<E: Evaluator + ?Sized> Evaluator for SpeedEvaluator<'_, E> {
    fn size_of(&self, config: &InliningConfiguration) -> u64 {
        let m = self.inner.measure(config, Objective::Speed);
        m.cycles.unwrap_or(m.size)
    }

    fn measure(&self, config: &InliningConfiguration, objective: Objective) -> Measurement {
        self.inner.measure(config, objective)
    }

    fn compilations(&self) -> u64 {
        self.inner.compilations()
    }

    fn queries(&self) -> u64 {
        self.inner.queries()
    }

    fn memo_scope(&self) -> Option<u128> {
        self.scope
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinline_ir::{BinOp, FuncBuilder};

    fn demo_module() -> Module {
        let mut m = Module::new("m");
        let helper = m.declare_function("helper", 1, Linkage::Internal);
        let main = m.declare_function("main", 0, Linkage::Public);
        {
            let mut b = FuncBuilder::new(&mut m, helper);
            let p = b.param(0);
            let one = b.iconst(1);
            let r = b.bin(BinOp::Add, p, one);
            b.ret(Some(r));
        }
        {
            let mut b = FuncBuilder::new(&mut m, main);
            let x = b.iconst(41);
            let v = b.call(helper, &[x]).unwrap();
            b.ret(Some(v));
        }
        m
    }

    #[test]
    fn objective_spellings_round_trip() {
        for o in [Objective::Size, Objective::Speed, Objective::Pareto] {
            assert_eq!(Objective::parse(o.name()), Some(o));
        }
        assert_eq!(Objective::parse("sizes"), None);
        assert!(!Objective::Size.wants_cycles());
        assert!(Objective::Speed.wants_cycles());
        assert!(Objective::Pareto.wants_cycles());
    }

    #[test]
    fn module_cycles_counts_public_entry_points() {
        let m = demo_module();
        let cycles = module_cycles(&m, &CostModel::default()).expect("main is executable");
        assert!(cycles > 0);
        // Only `main` is public: internal helpers are reached through it,
        // not measured as roots of their own.
        let again = module_cycles(&m, &CostModel::default()).unwrap();
        assert_eq!(cycles, again, "measurement is deterministic");
    }

    #[test]
    fn module_with_no_public_functions_measures_nothing() {
        let mut m = Module::new("silent");
        let f = m.declare_function("f", 0, Linkage::Internal);
        {
            let mut b = FuncBuilder::new(&mut m, f);
            let x = b.iconst(1);
            b.ret(Some(x));
        }
        assert_eq!(module_cycles(&m, &CostModel::default()), None);
    }

    #[test]
    fn objective_scope_separates_size_from_cycles() {
        let cost = CostModel::default();
        let domain = 0xdead_beef_u128;
        assert_eq!(
            objective_scope(domain, Objective::Size, &cost),
            domain,
            "the size scope is the domain fingerprint itself — warm caches stay warm"
        );
        let speed = objective_scope(domain, Objective::Speed, &cost);
        assert_ne!(speed, domain, "cycles entries must never alias size entries");
        assert_eq!(
            speed,
            objective_scope(domain, Objective::Pareto, &cost),
            "speed and pareto record the same measurements: one shared scope"
        );
        // The cost model is part of the identity.
        let other = CostModel { call_overhead: 99, ..CostModel::default() };
        assert_ne!(speed, objective_scope(domain, Objective::Speed, &other));
    }
}
