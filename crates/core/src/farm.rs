//! A deterministic compile-farm model.
//!
//! The paper runs its searches on a 64-core machine and pitches the
//! autotuner at "compilation farms" (§1, §6): every evaluation is an
//! independent compile, so wall-clock is a scheduling question. This
//! module models it: greedy list scheduling of independent compile tasks
//! onto `workers` identical machines, plus helpers that turn a search's
//! structure into task lists.
//!
//! The model is intentionally simple — no network, no stragglers — but it
//! answers the questions the paper answers informally: how long does an
//! exhaustive search or an autotuning round take at a given farm size, and
//! where does adding workers stop helping (the critical path: an
//! autotuning *round* is perfectly parallel, but rounds are sequential).

/// Greedy list scheduling (longest-processing-time first) of independent
/// tasks onto `workers` machines; returns the makespan.
///
/// LPT is a 4/3-approximation of optimal makespan — plenty for capacity
/// planning.
///
/// # Panics
///
/// Panics if `workers == 0`.
pub fn makespan(tasks: &[u64], workers: usize) -> u64 {
    assert!(workers > 0, "a farm needs at least one worker");
    if tasks.is_empty() {
        return 0;
    }
    let mut sorted: Vec<u64> = tasks.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![0u64; workers.min(sorted.len())];
    for t in sorted {
        let min = loads.iter_mut().min().expect("at least one worker");
        *min += t;
    }
    loads.into_iter().max().unwrap_or(0)
}

/// A phased workload: phases run sequentially, tasks within a phase are
/// independent. An autotuning session is `rounds` phases of `n + 2` compile
/// tasks; an inlining-tree evaluation is (conservatively) one phase of leaf
/// compiles followed by one phase of combine compiles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhasedWork {
    /// Per-phase task cost lists (e.g. microseconds per compile).
    pub phases: Vec<Vec<u64>>,
}

impl PhasedWork {
    /// Uniform-cost helper: `phase_sizes[i]` tasks of `cost` each.
    pub fn uniform(phase_sizes: &[usize], cost: u64) -> Self {
        PhasedWork { phases: phase_sizes.iter().map(|&n| vec![cost; n]).collect() }
    }

    /// Total work (the single-worker makespan).
    pub fn total(&self) -> u64 {
        self.phases.iter().flatten().sum()
    }

    /// Makespan on `workers` machines: phases serialize, tasks within a
    /// phase schedule greedily.
    pub fn makespan(&self, workers: usize) -> u64 {
        self.phases.iter().map(|p| makespan(p, workers)).sum()
    }

    /// The parallel speedup at `workers` machines.
    pub fn speedup(&self, workers: usize) -> f64 {
        let m = self.makespan(workers);
        if m == 0 {
            return 1.0;
        }
        self.total() as f64 / m as f64
    }

    /// Smallest worker count achieving within `slack` (e.g. `1.05`) of the
    /// asymptotic (infinite-worker) makespan.
    pub fn saturation_point(&self, slack: f64) -> usize {
        let floor = self.makespan(usize::MAX / 2) as f64;
        let mut w = 1;
        while (self.makespan(w) as f64) > floor * slack {
            w *= 2;
            if w > 1 << 20 {
                break;
            }
        }
        w
    }
}

/// Builds the phased work of an autotuning session: `rounds` phases, each
/// `n_sites + 2` compiles of `compile_cost` (the `+2` being the base and
/// combined evaluations, which serialize with the probes; we charge them
/// into the parallel phase, a ≤2-task underestimate per round).
pub fn autotune_work(n_sites: usize, rounds: usize, compile_cost: u64) -> PhasedWork {
    PhasedWork::uniform(&vec![n_sites + 2; rounds], compile_cost)
}

/// Builds the phased work of an inlining-tree evaluation: all leaves in one
/// phase, then the component-combining compiles in a second. (The true
/// dependency structure is a tree; two phases is the conservative shape —
/// combines wait for every leaf.)
pub fn tree_work(leaves: u128, combines: u128, compile_cost: u64) -> PhasedWork {
    PhasedWork::uniform(
        &[leaves.min(1 << 30) as usize, combines.min(1 << 30) as usize],
        compile_cost,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_worker_makespan_is_total() {
        assert_eq!(makespan(&[3, 5, 2], 1), 10);
    }

    #[test]
    fn many_workers_hit_the_longest_task() {
        assert_eq!(makespan(&[3, 5, 2], 100), 5);
    }

    #[test]
    fn lpt_balances_reasonably() {
        // Sorted 4,3,3 onto two workers: {4} and {3,3} — makespan 6, which
        // is optimal here.
        assert_eq!(makespan(&[4, 3, 3], 2), 6);
    }

    #[test]
    fn zero_tasks_take_no_time() {
        assert_eq!(makespan(&[], 4), 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        makespan(&[1], 0);
    }

    #[test]
    fn phases_serialize() {
        let w = PhasedWork::uniform(&[10, 10], 1);
        assert_eq!(w.makespan(10), 2);
        assert_eq!(w.makespan(1), 20);
        assert_eq!(w.total(), 20);
    }

    #[test]
    fn speedup_saturates_at_phase_width() {
        // 4 rounds of 18 tasks: beyond 18 workers nothing improves.
        let w = autotune_work(16, 4, 100);
        assert!(w.speedup(18) > w.speedup(4));
        assert_eq!(w.makespan(18), w.makespan(1000));
        assert_eq!(w.makespan(1000), 4 * 100);
    }

    #[test]
    fn saturation_point_finds_the_knee() {
        let w = autotune_work(16, 4, 100);
        let sat = w.saturation_point(1.01);
        assert!(sat <= 32, "saturation at {sat}");
        assert!(w.makespan(sat) as f64 <= w.makespan(usize::MAX / 2) as f64 * 1.01);
    }

    #[test]
    fn tree_work_reflects_leaf_dominance() {
        let w = tree_work(1000, 10, 50);
        assert_eq!(w.total(), 50 * 1010);
        // With 1000 workers: leaves take 50, combines 50.
        assert_eq!(w.makespan(1000), 100);
    }
}
