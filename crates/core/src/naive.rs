//! The naïve exponential search (§3.1): evaluate all `2^n` total
//! configurations. Feasible only for small `n`; it is the ground truth the
//! recursively partitioned search is validated against.

use crate::config::InliningConfiguration;
use crate::evaluator::Evaluator;
use optinline_ir::CallSiteId;
use std::collections::BTreeSet;

/// Result of a search: the best configuration found and bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchOutcome {
    /// An optimal configuration (ties broken toward fewer inlined sites —
    /// the all-no-inline mask is enumerated first).
    pub config: InliningConfiguration,
    /// Its `.text` size.
    pub size: u64,
    /// Number of configurations evaluated.
    pub evaluations: u128,
}

/// Hard cap on exhaustively enumerable sites (2^22 ≈ 4M compilations).
pub const NAIVE_SITE_CAP: usize = 22;

/// Exhaustively evaluates every configuration over `sites`.
///
/// # Panics
///
/// Panics if `sites.len() > NAIVE_SITE_CAP` — use the inlining tree
/// (`crate::tree`) for anything bigger; that is the point of the paper.
pub fn exhaustive_search(evaluator: &dyn Evaluator, sites: &BTreeSet<CallSiteId>) -> SearchOutcome {
    assert!(
        sites.len() <= NAIVE_SITE_CAP,
        "naïve search over {} sites would need 2^{} compilations",
        sites.len(),
        sites.len()
    );
    let n = sites.len() as u32;
    let total: u128 = 1u128 << n;
    let mut best: Option<(InliningConfiguration, u64)> = None;
    for mask in 0..total {
        let config = InliningConfiguration::from_mask(sites, mask);
        let size = evaluator.size_of(&config);
        let better = match &best {
            None => true,
            Some((_, s)) => size < *s,
        };
        if better {
            best = Some((config, size));
        }
    }
    let (config, size) = best.expect("at least the empty mask is evaluated");
    SearchOutcome { config, size, evaluations: total }
}

/// The naïve search-space size `2^n` as a `u128`.
///
/// # Panics
///
/// Panics if `n > 127`; report log2 sizes instead for big graphs.
pub fn naive_space_size(n_sites: usize) -> u128 {
    assert!(n_sites < 128, "2^{n_sites} overflows u128; report log2 instead");
    1u128 << n_sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::CompilerEvaluator;
    use optinline_callgraph::Decision;
    use optinline_codegen::X86Like;
    use optinline_ir::{BinOp, FuncBuilder, Linkage, Module};

    /// Two independent calls: one profitable to inline (tiny callee that
    /// dies), one not (fat callee with two callers and a non-constant
    /// argument, so its body cannot fold away after inlining).
    fn mixed_module() -> (Module, CallSiteId, CallSiteId) {
        let mut m = Module::new("m");
        let g = m.add_global("g", 7);
        let tiny = m.declare_function("tiny", 1, Linkage::Internal);
        let fat = m.declare_function("fat", 1, Linkage::Internal);
        let main = m.declare_function("main", 0, Linkage::Public);
        let keeper = m.declare_function("keeper", 1, Linkage::Public);
        {
            let mut b = FuncBuilder::new(&mut m, tiny);
            let p = b.param(0);
            let r = b.bin(BinOp::Add, p, p);
            b.ret(Some(r));
        }
        {
            let mut b = FuncBuilder::new(&mut m, fat);
            let p = b.param(0);
            let mut acc = p;
            for k in 1..50 {
                let c = b.iconst(k * 3);
                acc = b.bin(BinOp::Xor, acc, c);
            }
            b.ret(Some(acc));
        }
        let (s_tiny, s_fat) = {
            let mut b = FuncBuilder::new(&mut m, main);
            let x = b.iconst(5);
            let (t, s_tiny) = b.call_with_site(tiny, &[x]);
            let unknown = b.load(g);
            let mixed = b.bin(BinOp::Add, t, unknown);
            let (f, s_fat) = b.call_with_site(fat, &[mixed]);
            b.ret(Some(f));
            (s_tiny, s_fat)
        };
        {
            let mut b = FuncBuilder::new(&mut m, keeper);
            let p = b.param(0);
            let v = b.call(fat, &[p]).unwrap();
            b.ret(Some(v));
        }
        (m, s_tiny, s_fat)
    }

    #[test]
    fn finds_the_true_optimum_over_four_configs() {
        let (m, s_tiny, s_fat) = mixed_module();
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let sites = ev.sites().clone();
        let out = exhaustive_search(&ev, &sites);
        assert_eq!(out.evaluations, 8); // three sites: two in main, one in keeper
        assert_eq!(out.config.decision(s_tiny), Decision::Inline);
        assert_eq!(out.config.decision(s_fat), Decision::NoInline);
        // Cross-check against direct enumeration.
        for mask in 0..8u128 {
            let c = InliningConfiguration::from_mask(&sites, mask);
            assert!(ev.size_of(&c) >= out.size);
        }
    }

    #[test]
    fn empty_site_set_evaluates_once() {
        let (m, _, _) = mixed_module();
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let out = exhaustive_search(&ev, &BTreeSet::new());
        assert_eq!(out.evaluations, 1);
        assert_eq!(out.config, InliningConfiguration::clean_slate());
    }

    #[test]
    #[should_panic(expected = "naïve search")]
    fn refuses_oversized_site_sets() {
        let sites: BTreeSet<CallSiteId> = (0..40).map(CallSiteId::new).collect();
        struct Zero;
        impl Evaluator for Zero {
            fn size_of(&self, _c: &InliningConfiguration) -> u64 {
                0
            }
            fn compilations(&self) -> u64 {
                0
            }
            fn queries(&self) -> u64 {
                0
            }
        }
        exhaustive_search(&Zero, &sites);
    }

    #[test]
    fn naive_space_size_is_a_power_of_two() {
        assert_eq!(naive_space_size(0), 1);
        assert_eq!(naive_space_size(3), 8);
        assert_eq!(naive_space_size(20), 1 << 20);
    }
}
