//! Analyses over configurations: decision agreement (Table 2), inlined
//! call-chain lengths (Figure 9), and roofline statistics versus the
//! optimum (Figure 7 / Figure 16).

use crate::config::InliningConfiguration;
use optinline_callgraph::Decision;
use optinline_ir::{CallSiteId, FuncId, Module};
use std::collections::{BTreeMap, BTreeSet};

/// Pairwise decision agreement between an optimal configuration and another
/// strategy's configuration (the paper's Table 2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Agreement {
    /// Optimal no-inline, other no-inline.
    pub both_no_inline: u64,
    /// Optimal no-inline, other inline — the other strategy is too eager.
    pub too_aggressive: u64,
    /// Optimal inline, other no-inline — the other strategy is too shy.
    pub too_conservative: u64,
    /// Optimal inline, other inline.
    pub both_inline: u64,
}

impl Agreement {
    /// Accumulates agreement over one file's site set.
    pub fn accumulate(
        &mut self,
        sites: &BTreeSet<CallSiteId>,
        optimal: &InliningConfiguration,
        other: &InliningConfiguration,
    ) {
        for &s in sites {
            match (optimal.decision(s), other.decision(s)) {
                (Decision::NoInline, Decision::NoInline) => self.both_no_inline += 1,
                (Decision::NoInline, Decision::Inline) => self.too_aggressive += 1,
                (Decision::Inline, Decision::NoInline) => self.too_conservative += 1,
                (Decision::Inline, Decision::Inline) => self.both_inline += 1,
            }
        }
    }

    /// Total decisions compared.
    pub fn total(&self) -> u64 {
        self.both_no_inline + self.too_aggressive + self.too_conservative + self.both_inline
    }

    /// Fraction of decisions where the strategies agree.
    pub fn agreement_rate(&self) -> f64 {
        if self.total() == 0 {
            return 1.0;
        }
        (self.both_no_inline + self.both_inline) as f64 / self.total() as f64
    }
}

/// Lengths of maximal inlined call chains (Figure 9): paths in the original
/// call graph all of whose edges are inlined, extended as far as possible
/// in both directions.
///
/// Chains are enumerated from *source* edges — inlined edges whose caller
/// has no incoming inlined edge — and followed through every inlined
/// continuation; each maximal path contributes its edge count.
pub fn inlined_chain_lengths(module: &Module, config: &InliningConfiguration) -> Vec<usize> {
    // Original call multigraph restricted to inlined edges.
    let mut out_edges: BTreeMap<FuncId, Vec<(CallSiteId, FuncId)>> = BTreeMap::new();
    let mut has_inlined_in: BTreeSet<FuncId> = BTreeSet::new();
    let inlinable = module.inlinable_sites();
    for (caller, f) in module.iter_funcs() {
        for (site, callee) in f.call_edges() {
            if inlinable.contains(&site) && config.decision(site) == Decision::Inline {
                out_edges.entry(caller).or_default().push((site, callee));
                has_inlined_in.insert(callee);
            }
        }
    }
    let mut lengths = Vec::new();
    // DFS from sources, tracking visited sites to stay acyclic.
    fn extend(
        out_edges: &BTreeMap<FuncId, Vec<(CallSiteId, FuncId)>>,
        node: FuncId,
        depth: usize,
        visited: &mut BTreeSet<CallSiteId>,
        lengths: &mut Vec<usize>,
    ) {
        let nexts: Vec<(CallSiteId, FuncId)> = out_edges
            .get(&node)
            .map(|v| v.iter().filter(|(s, _)| !visited.contains(s)).copied().collect())
            .unwrap_or_default();
        if nexts.is_empty() {
            lengths.push(depth);
            return;
        }
        for (site, callee) in nexts {
            visited.insert(site);
            extend(out_edges, callee, depth + 1, visited, lengths);
            visited.remove(&site);
        }
    }
    for &caller in out_edges.keys() {
        if has_inlined_in.contains(&caller) {
            continue; // not a chain start
        }
        let mut visited = BTreeSet::new();
        extend(&out_edges, caller, 0, &mut visited, &mut lengths);
    }
    // Cycles made purely of inlined edges have no source; count each such
    // component once with its cycle length.
    lengths.retain(|&l| l > 0);
    lengths
}

/// Histogram of chain lengths, indexed by length (1-based bucket `i` holds
/// chains of exactly `i` edges).
pub fn chain_length_histogram(lengths: &[usize]) -> Vec<u64> {
    let max = lengths.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0u64; max + 1];
    for &l in lengths {
        hist[l] += 1;
    }
    hist
}

/// Roofline statistics: a strategy's sizes versus the optimal sizes across
/// a corpus of files (Figure 7 for the baseline, Figure 16 for the
/// autotuner).
#[derive(Clone, Debug, PartialEq)]
pub struct RooflineStats {
    /// Number of files compared.
    pub files: usize,
    /// Files where the strategy matched the optimal size.
    pub optimal_found: usize,
    /// Median relative size increase of the *non-optimal* files (percent).
    pub median_nonoptimal_overhead_pct: f64,
    /// Files with overhead ≥ 5%.
    pub at_least_5pct: usize,
    /// Files with overhead ≥ 10%.
    pub at_least_10pct: usize,
    /// Maximum overhead (percent).
    pub max_overhead_pct: f64,
}

impl RooflineStats {
    /// Builds the statistics from `(strategy_size, optimal_size)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any strategy size is below its optimal size (the optimum
    /// would not be optimal) or any optimal size is zero.
    pub fn from_pairs(pairs: &[(u64, u64)]) -> Self {
        let mut overheads: Vec<f64> = Vec::new();
        let mut optimal_found = 0usize;
        for &(got, best) in pairs {
            assert!(best > 0, "optimal size must be positive");
            assert!(
                got >= best,
                "strategy size {got} beats the 'optimal' {best}; the search is unsound"
            );
            if got == best {
                optimal_found += 1;
            } else {
                overheads.push((got as f64 / best as f64 - 1.0) * 100.0);
            }
        }
        overheads.sort_by(|a, b| a.partial_cmp(b).expect("overheads are finite"));
        let median = if overheads.is_empty() {
            0.0
        } else if overheads.len() % 2 == 1 {
            overheads[overheads.len() / 2]
        } else {
            (overheads[overheads.len() / 2 - 1] + overheads[overheads.len() / 2]) / 2.0
        };
        RooflineStats {
            files: pairs.len(),
            optimal_found,
            median_nonoptimal_overhead_pct: median,
            at_least_5pct: overheads.iter().filter(|&&o| o >= 5.0).count(),
            at_least_10pct: overheads.iter().filter(|&&o| o >= 10.0).count(),
            max_overhead_pct: overheads.iter().copied().fold(0.0, f64::max),
        }
    }

    /// Fraction of files where the optimum was found.
    pub fn optimal_rate(&self) -> f64 {
        if self.files == 0 {
            return 1.0;
        }
        self.optimal_found as f64 / self.files as f64
    }
}

/// Geometric mean of relative values (e.g. relative sizes or runtimes).
///
/// # Panics
///
/// Panics on empty input or non-positive entries.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Median of a slice (averaging the middle pair for even lengths).
///
/// # Panics
///
/// Panics on empty input.
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of nothing");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    if v.len() % 2 == 1 {
        v[v.len() / 2]
    } else {
        (v[v.len() / 2 - 1] + v[v.len() / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinline_ir::{FuncBuilder, Linkage};

    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    #[test]
    fn agreement_buckets_match_table2_semantics() {
        let sites: BTreeSet<_> = (0..4).map(s).collect();
        let optimal: InliningConfiguration = [
            (s(0), Decision::NoInline),
            (s(1), Decision::NoInline),
            (s(2), Decision::Inline),
            (s(3), Decision::Inline),
        ]
        .into_iter()
        .collect();
        let other: InliningConfiguration = [
            (s(0), Decision::NoInline),
            (s(1), Decision::Inline),
            (s(2), Decision::NoInline),
            (s(3), Decision::Inline),
        ]
        .into_iter()
        .collect();
        let mut a = Agreement::default();
        a.accumulate(&sites, &optimal, &other);
        assert_eq!(a.both_no_inline, 1);
        assert_eq!(a.too_aggressive, 1);
        assert_eq!(a.too_conservative, 1);
        assert_eq!(a.both_inline, 1);
        assert_eq!(a.total(), 4);
        assert!((a.agreement_rate() - 0.5).abs() < 1e-12);
    }

    /// main →s0→ a →s1→ b, plus main →s2→ c (independent).
    fn chain_module() -> Module {
        let mut m = Module::new("m");
        let b_ = m.declare_function("b", 0, Linkage::Internal);
        let a = m.declare_function("a", 0, Linkage::Internal);
        let c = m.declare_function("c", 0, Linkage::Internal);
        let main = m.declare_function("main", 0, Linkage::Public);
        {
            let mut bl = FuncBuilder::new(&mut m, b_);
            bl.ret(None);
        }
        {
            let mut bl = FuncBuilder::new(&mut m, c);
            bl.ret(None);
        }
        {
            let mut bl = FuncBuilder::new(&mut m, main);
            bl.call_void(a, &[]); // s0
            bl.call_void(c, &[]); // s1
            bl.ret(None);
        }
        {
            let mut bl = FuncBuilder::new(&mut m, a);
            bl.call_void(b_, &[]); // s2
            bl.ret(None);
        }
        m
    }

    #[test]
    fn chain_lengths_follow_inlined_paths() {
        let m = chain_module();
        // Inline main→a and a→b: one chain of length 2. Inline main→c: one
        // chain of length 1.
        let cfg: InliningConfiguration =
            [(s(0), Decision::Inline), (s(1), Decision::Inline), (s(2), Decision::Inline)]
                .into_iter()
                .collect();
        let mut lengths = inlined_chain_lengths(&m, &cfg);
        lengths.sort_unstable();
        assert_eq!(lengths, vec![1, 2]);
        let hist = chain_length_histogram(&lengths);
        assert_eq!(hist[1], 1);
        assert_eq!(hist[2], 1);
    }

    #[test]
    fn breaking_the_chain_yields_two_singletons() {
        let m = chain_module();
        // Inline main→a and a→b but NOT… wait, break in the middle: inline
        // s0 (main→a) and s2 (a→b) are the chain; keep only the ends.
        let cfg: InliningConfiguration =
            [(s(0), Decision::Inline), (s(2), Decision::NoInline), (s(1), Decision::Inline)]
                .into_iter()
                .collect();
        let mut lengths = inlined_chain_lengths(&m, &cfg);
        lengths.sort_unstable();
        assert_eq!(lengths, vec![1, 1]);
    }

    #[test]
    fn empty_configuration_has_no_chains() {
        let m = chain_module();
        let lengths = inlined_chain_lengths(&m, &InliningConfiguration::clean_slate());
        assert!(lengths.is_empty());
    }

    #[test]
    fn roofline_statistics_summarize_overheads() {
        let pairs = [(100, 100), (105, 100), (112, 100), (100, 100), (381, 100)];
        let r = RooflineStats::from_pairs(&pairs);
        assert_eq!(r.files, 5);
        assert_eq!(r.optimal_found, 2);
        assert_eq!(r.at_least_5pct, 3);
        assert_eq!(r.at_least_10pct, 2);
        assert!((r.median_nonoptimal_overhead_pct - 12.0).abs() < 1e-9);
        assert!((r.max_overhead_pct - 281.0).abs() < 1e-9);
        assert!((r.optimal_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unsound")]
    fn roofline_rejects_sizes_below_optimal() {
        RooflineStats::from_pairs(&[(90, 100)]);
    }

    #[test]
    fn geometric_mean_and_median_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((median(&[3.0, 1.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((median(&[1.0, 2.0, 3.0, 4.0]) - 2.5).abs() < 1e-12);
    }
}
