//! Evaluating configurations: the paper's `CompileAndMeasureSize`.
//!
//! [`CompilerEvaluator`] clones the module, runs the decision-driven
//! inliner plus the `-Os`-like cleanup pipeline, and measures the `.text`
//! size under a [`Target`]. Results are memoized on the configuration's
//! canonical identity (its inlined-site set), so the tree search and the
//! autotuner never pay twice for the same point — the single-machine
//! stand-in for the paper's compile-farm parallelism. The memo lives in a
//! [`ShardedCache`], so concurrent hits from the parallel search do not
//! serialize on one lock.
//!
//! [`IncrementalEvaluator`](crate::IncrementalEvaluator) is the
//! component-scoped alternative that compiles only the call-graph
//! components a configuration actually touches; both expose the same
//! [`EvaluatorStats`] observability surface through `stats()`.

use crate::cache::ShardedCache;
use crate::config::InliningConfiguration;
use crate::measure::{module_cycles, Objective};
use optinline_callgraph::Fnv128;
use optinline_codegen::{text_size, Target};
use optinline_ir::interp::CostModel;
use optinline_ir::{CallSiteId, Measurement, Module};
use optinline_opt::{optimize_os_report, ForcedDecisions, PipelineOptions, PipelineStats};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Anything that can score an inlining configuration.
///
/// Implementations must be thread-safe: the tree search and the autotuner
/// evaluate concurrently.
pub trait Evaluator: Sync {
    /// The `.text` size of the module under `config`.
    fn size_of(&self, config: &InliningConfiguration) -> u64;

    /// Measures `config` under `objective`. The default covers size-only
    /// evaluators: it wraps [`size_of`](Evaluator::size_of) whatever the
    /// objective, reporting `cycles: None` — a correct (if cycle-blind)
    /// answer. Module-backed evaluators override this to measure
    /// simulated cycles when the objective wants them; the `Size`
    /// objective must always reduce to exactly `size_of`, so size-driven
    /// callers stay byte-identical to the scalar era.
    fn measure(&self, config: &InliningConfiguration, objective: Objective) -> Measurement {
        let _ = objective;
        Measurement::size_only(self.size_of(config))
    }

    /// Number of *distinct* compilations performed so far (cache misses).
    fn compilations(&self) -> u64;

    /// Number of size queries served (including cache hits).
    fn queries(&self) -> u64;

    /// A stable identity for the evaluation domain this evaluator scores —
    /// the (module, target, pipeline options) triple behind `size_of`.
    /// [`SearchSession`](crate::SearchSession) memoization keys include it,
    /// so one session can be shared across evaluators over *different*
    /// modules (the experiment harness does exactly this) without results
    /// leaking between domains: call sites are minted densely per module,
    /// so without the scope two modules' residual trees can collide on
    /// shape and site numbering alone.
    ///
    /// `None` — the default — opts the evaluator out of session
    /// memoization entirely: an evaluator that cannot name its domain must
    /// not populate a shared memo table. The module-backed evaluators all
    /// return a domain fingerprint.
    fn memo_scope(&self) -> Option<u128> {
        None
    }
}

/// 128-bit fingerprint of an evaluation domain: the module's printed form,
/// the target name, and the pipeline options. Any input that can move a
/// `size_of` answer moves the fingerprint, which is exactly what
/// [`Evaluator::memo_scope`] needs to keep shared [`SearchSession`]s
/// (crate::SearchSession) sound.
pub(crate) fn domain_fingerprint(
    module: &Module,
    target: &dyn Target,
    options: PipelineOptions,
) -> u128 {
    let mut h = Fnv128::new();
    h.write(module.to_string().as_bytes());
    h.write_u8(0);
    h.write(target.name().as_bytes());
    h.write_u8(0);
    h.write(format!("{options:?}").as_bytes());
    h.finish()
}

/// 128-bit identity of a *request* against an evaluation service: a
/// length-prefixed FNV-128 over every part that determines the reply
/// bytes (request kind, module text, target, parameters). The serving
/// daemon deduplicates in-flight requests by this value, so it lives in
/// core next to [`domain_fingerprint`] — the two members of the identity
/// family must never drift apart in hashing discipline.
pub fn evaluation_identity<'a>(parts: impl IntoIterator<Item = &'a str>) -> u128 {
    let mut h = Fnv128::new();
    for part in parts {
        // Length-prefix each part so ("ab", "c") and ("a", "bc") differ.
        h.write_u64(part.len() as u64);
        h.write(part.as_bytes());
    }
    h.finish()
}

/// An [`Evaluator`] backed by an actual module — enough surface for the
/// searches (which need the call graph) to run against either the full
/// or the incremental evaluator.
pub trait ModuleEvaluator: Evaluator {
    /// The pristine input module.
    fn module(&self) -> &Module;

    /// The module's inlinable call sites — the configuration domain.
    fn sites(&self) -> &BTreeSet<CallSiteId>;

    /// Snapshot of the evaluator's observability counters.
    fn stats(&self) -> EvaluatorStats;

    /// Reference-path size: compile the *whole* module under `config`,
    /// bypassing every cache, memo, and decomposition shortcut, and measure
    /// it. Differential oracles cross-check [`Evaluator::size_of`] (the
    /// fast path) against this; implementations must not share state with
    /// the fast path beyond the pristine module itself.
    fn full_size_of(&self, config: &InliningConfiguration) -> u64;
}

/// Observability snapshot shared by both evaluators: how many queries were
/// served, what they cost, and how well the memoization worked.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EvaluatorStats {
    /// Size queries served (including cache hits).
    pub queries: u64,
    /// Distinct compilations performed (cache misses).
    pub compiles: u64,
    /// Memo-cache hits.
    pub cache_hits: u64,
    /// Memo-cache misses.
    pub cache_misses: u64,
    /// Memo-cache entries displaced by a capacity bound (0 when unbounded).
    pub cache_evictions: u64,
    /// Entries resident per cache shard.
    pub shard_loads: Vec<usize>,
    /// Compilations per call-graph component (empty for the full-module
    /// evaluator, which has no component structure).
    pub per_component_compiles: Vec<u64>,
    /// Total wall-clock time spent inside compile-and-measure.
    pub compile_time: Duration,
    /// Compile work in units of one full-module compilation: each compile
    /// weighted by its share of the pristine module's instructions. For the
    /// full evaluator this equals `compiles`; for the incremental one it is
    /// the headline savings metric.
    pub full_module_equivalents: f64,
    /// Cleanup fixpoint loops that exhausted their iteration cap with
    /// changes still happening, summed over every compile (mirror of
    /// `pipeline.cap_hits`). Non-zero values mean some module needed more
    /// than `PipelineOptions::max_iterations` rounds to converge.
    pub fixpoint_cap_hits: u64,
    /// Per-pass, analysis-cache, and scheduling counters aggregated over
    /// every compile this evaluator performed (rendered by `--pass-stats`).
    pub pipeline: PipelineStats,
    /// Cycle measurements served (including cycles-cache hits); 0 for
    /// size-only runs.
    pub cycle_measures: u64,
    /// Whole-module compiles performed *only* to measure cycles (the
    /// cycles path never reuses a size compile's artifact).
    pub cycle_compiles: u64,
    /// Tasks materialized by the task-DAG search executor (0 when the
    /// sequential walk ran).
    pub executor_tasks: u64,
    /// DAG tasks executed from another worker's deque (work stealing).
    pub executor_steals: u64,
    /// Subproblems the search session resolved from its hash-cons table
    /// instead of evaluating.
    pub dedup_hits: u64,
    /// Size queries answered by the persistent on-disk cache.
    pub persist_hits: u64,
    /// Size queries the persistent cache had to forward to the evaluator.
    pub persist_misses: u64,
    /// Entries recovered from disk when the persistent cache was opened.
    pub persist_loaded: u64,
    /// Batched append writes the evaluation store performed (one syscall
    /// each; compare against `persist_misses` to see the batching win).
    pub store_appends: u64,
    /// Entry lines carried by those appends.
    pub store_flushed_lines: u64,
    /// Entries imported from legacy per-module cache files.
    pub store_imported: u64,
    /// Bytes the store reclaimed by compacting its logs.
    pub store_compacted_bytes: u64,
    /// Scope logs evicted by size-budgeted store GC.
    pub store_gc_evicted_scopes: u64,
    /// Bytes reclaimed by size-budgeted store GC.
    pub store_gc_evicted_bytes: u64,
}

impl EvaluatorStats {
    /// One-line human-readable rendering for CLI/experiment footers.
    pub fn render(&self) -> String {
        let mut line = format!(
            "{} queries, {} compiles ({:.2} full-module equivalents), \
             {} cache hits / {} misses, {:.1?} compiling, {} fixpoint cap hits",
            self.queries,
            self.compiles,
            self.full_module_equivalents,
            self.cache_hits,
            self.cache_misses,
            self.compile_time,
            self.fixpoint_cap_hits,
        );
        if self.cycle_measures > 0 {
            line.push_str(&format!(
                ", cycles: {} measures / {} compiles",
                self.cycle_measures, self.cycle_compiles,
            ));
        }
        if self.executor_tasks > 0 {
            line.push_str(&format!(
                ", executor: {} tasks / {} steals / {} dedup hits",
                self.executor_tasks, self.executor_steals, self.dedup_hits,
            ));
        }
        if self.persist_hits + self.persist_misses + self.persist_loaded > 0 {
            line.push_str(&format!(
                ", persist: {} hits / {} misses / {} loaded",
                self.persist_hits, self.persist_misses, self.persist_loaded,
            ));
        }
        if self.store_appends + self.store_imported + self.store_compacted_bytes > 0 {
            line.push_str(&format!(
                ", store: {} appends ({} lines) / {} imported / {} bytes compacted",
                self.store_appends,
                self.store_flushed_lines,
                self.store_imported,
                self.store_compacted_bytes,
            ));
        }
        if self.store_gc_evicted_scopes + self.store_gc_evicted_bytes > 0 {
            line.push_str(&format!(
                ", store gc: {} scopes / {} bytes evicted",
                self.store_gc_evicted_scopes, self.store_gc_evicted_bytes,
            ));
        }
        line
    }

    /// Folds the task-DAG executor's counters into this snapshot.
    pub fn absorb_executor(&mut self, exec: crate::dag::ExecutorStats) {
        self.executor_tasks += exec.tasks;
        self.executor_steals += exec.steals;
        self.dedup_hits += exec.dedup_hits;
    }

    /// Folds a persistent cache's counters into this snapshot.
    pub fn absorb_persist(&mut self, persist: crate::persist::PersistStats) {
        self.persist_hits += persist.hits;
        self.persist_misses += persist.misses;
        self.persist_loaded += persist.loaded;
    }

    /// Folds the evaluation store's *store-level* counters into this
    /// snapshot. Per-scope hit/miss/loaded counts are already covered by
    /// [`EvaluatorStats::absorb_persist`], so only the I/O-shape counters
    /// (appends, imports, compaction, GC) are taken here — absorbing both
    /// never double-counts.
    pub fn absorb_store(&mut self, store: optinline_store::StoreStats) {
        self.store_appends += store.appends;
        self.store_flushed_lines += store.flushed_lines;
        self.store_imported += store.imported;
        self.store_compacted_bytes += store.compacted_bytes;
        self.store_gc_evicted_scopes += store.gc_evicted_scopes;
        self.store_gc_evicted_bytes += store.gc_evicted_bytes;
    }
}

/// The standard evaluator: compile the module under the configuration and
/// measure `.text` bytes (memoized).
pub struct CompilerEvaluator {
    module: Module,
    target: Box<dyn Target>,
    options: PipelineOptions,
    sites: BTreeSet<CallSiteId>,
    cache: ShardedCache<BTreeSet<CallSiteId>, u64>,
    /// Cycles memo, separate from the size memo: most runs never measure
    /// cycles and must not pay for the wider value. `None` is a cached
    /// answer too ("nothing executable"), not a miss.
    cycles_cache: ShardedCache<BTreeSet<CallSiteId>, Option<u64>>,
    cost: CostModel,
    compiles: AtomicU64,
    queries: AtomicU64,
    cycle_measures: AtomicU64,
    cycle_compiles: AtomicU64,
    compile_nanos: AtomicU64,
    pipeline_stats: Mutex<PipelineStats>,
    scope: OnceLock<u128>,
}

impl std::fmt::Debug for CompilerEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompilerEvaluator")
            .field("module", &self.module.name)
            .field("target", &self.target.name())
            .field("sites", &self.sites.len())
            .field("compilations", &self.compilations())
            .finish()
    }
}

impl CompilerEvaluator {
    /// Creates an evaluator for `module` under `target`.
    pub fn new(module: Module, target: Box<dyn Target>) -> Self {
        let sites = module.inlinable_sites();
        CompilerEvaluator {
            module,
            target,
            options: PipelineOptions::default(),
            sites,
            cache: ShardedCache::new(),
            cycles_cache: ShardedCache::new(),
            cost: CostModel::default(),
            compiles: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            cycle_measures: AtomicU64::new(0),
            cycle_compiles: AtomicU64::new(0),
            compile_nanos: AtomicU64::new(0),
            pipeline_stats: Mutex::new(PipelineStats::default()),
            scope: OnceLock::new(),
        }
    }

    /// Overrides the pipeline options (e.g. verify-each for tests).
    pub fn with_options(mut self, options: PipelineOptions) -> Self {
        self.options = options;
        self
    }

    /// The module's inlinable call sites — the configuration domain.
    pub fn sites(&self) -> &BTreeSet<CallSiteId> {
        &self.sites
    }

    /// The pristine input module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The size-model target in use.
    pub fn target(&self) -> &dyn Target {
        self.target.as_ref()
    }

    /// The pipeline options in use.
    pub fn options(&self) -> PipelineOptions {
        self.options
    }

    /// The cost model cycle measurements run under (part of the
    /// cycles-scope identity).
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The simulated cycles of the module under `config`, memoized on the
    /// canonical inlined-site set. `None` means nothing executable.
    fn cycles_of(&self, config: &InliningConfiguration) -> Option<u64> {
        let key: BTreeSet<CallSiteId> =
            config.inlined_sites().intersection(&self.sites).copied().collect();
        if let Some(cycles) = self.cycles_cache.get(&key) {
            return cycles;
        }
        let optimized = self.compile(config);
        self.cycle_compiles.fetch_add(1, Ordering::Relaxed);
        let cycles = module_cycles(&optimized, &self.cost);
        self.cycles_cache.insert(key, cycles);
        cycles
    }

    /// Snapshot of the observability counters.
    pub fn stats(&self) -> EvaluatorStats {
        let cache = self.cache.stats();
        let compiles = self.compiles.load(Ordering::Relaxed);
        let pipeline = self.pipeline_stats.lock().unwrap().clone();
        EvaluatorStats {
            queries: self.queries.load(Ordering::Relaxed),
            compiles,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            shard_loads: cache.shard_loads,
            per_component_compiles: Vec::new(),
            compile_time: Duration::from_nanos(self.compile_nanos.load(Ordering::Relaxed)),
            full_module_equivalents: compiles as f64,
            fixpoint_cap_hits: pipeline.cap_hits,
            pipeline,
            cycle_measures: self.cycle_measures.load(Ordering::Relaxed),
            cycle_compiles: self.cycle_compiles.load(Ordering::Relaxed),
            ..EvaluatorStats::default()
        }
    }

    /// Compiles the module under `config` and returns the optimized module
    /// (uncached; for case-study inspection, not for search loops).
    pub fn compile(&self, config: &InliningConfiguration) -> Module {
        let mut m = self.module.clone();
        let oracle = ForcedDecisions::new(config.decisions().clone());
        let report = optimize_os_report(&mut m, &oracle, self.options);
        self.pipeline_stats.lock().unwrap().absorb(&report.stats);
        m
    }
}

impl Evaluator for CompilerEvaluator {
    fn measure(&self, config: &InliningConfiguration, objective: Objective) -> Measurement {
        if !objective.wants_cycles() {
            return Measurement::size_only(self.size_of(config));
        }
        self.cycle_measures.fetch_add(1, Ordering::Relaxed);
        let size = self.size_of(config);
        match self.cycles_of(config) {
            Some(cycles) => Measurement::with_cycles(size, cycles),
            None => Measurement::size_only(size),
        }
    }

    fn size_of(&self, config: &InliningConfiguration) -> u64 {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let key: BTreeSet<CallSiteId> =
            config.inlined_sites().intersection(&self.sites).copied().collect();
        if let Some(size) = self.cache.get(&key) {
            return size;
        }
        let start = Instant::now();
        let optimized = self.compile(config);
        let size = text_size(&optimized, self.target.as_ref());
        self.compile_nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.compiles.fetch_add(1, Ordering::Relaxed);
        self.cache.insert(key, size);
        size
    }

    fn compilations(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    fn memo_scope(&self) -> Option<u128> {
        Some(
            *self.scope.get_or_init(|| {
                domain_fingerprint(&self.module, self.target.as_ref(), self.options)
            }),
        )
    }
}

impl ModuleEvaluator for CompilerEvaluator {
    fn module(&self) -> &Module {
        &self.module
    }

    fn sites(&self) -> &BTreeSet<CallSiteId> {
        &self.sites
    }

    fn stats(&self) -> EvaluatorStats {
        CompilerEvaluator::stats(self)
    }

    fn full_size_of(&self, config: &InliningConfiguration) -> u64 {
        text_size(&self.compile(config), self.target.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinline_callgraph::Decision;
    use optinline_codegen::X86Like;
    use optinline_ir::{BinOp, FuncBuilder, Linkage};

    fn demo_module() -> (Module, CallSiteId) {
        let mut m = Module::new("m");
        let inc = m.declare_function("inc", 1, Linkage::Internal);
        let main = m.declare_function("main", 0, Linkage::Public);
        {
            let mut b = FuncBuilder::new(&mut m, inc);
            let p = b.param(0);
            let one = b.iconst(1);
            let r = b.bin(BinOp::Add, p, one);
            b.ret(Some(r));
        }
        let site = {
            let mut b = FuncBuilder::new(&mut m, main);
            let x = b.iconst(41);
            let (v, site) = b.call_with_site(inc, &[x]);
            b.ret(Some(v));
            site
        };
        (m, site)
    }

    #[test]
    fn sizes_differ_between_configurations() {
        let (m, site) = demo_module();
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let clean = InliningConfiguration::clean_slate();
        let inlined = InliningConfiguration::clean_slate().with(site, Decision::Inline);
        let s_clean = ev.size_of(&clean);
        let s_inlined = ev.size_of(&inlined);
        assert_ne!(s_clean, s_inlined);
        // inc folds away entirely and dies: inlined must win here.
        assert!(s_inlined < s_clean);
    }

    #[test]
    fn cache_hits_do_not_recompile() {
        let (m, site) = demo_module();
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let cfg = InliningConfiguration::clean_slate().with(site, Decision::Inline);
        let a = ev.size_of(&cfg);
        let b = ev.size_of(&cfg);
        assert_eq!(a, b);
        assert_eq!(ev.compilations(), 1);
        assert_eq!(ev.queries(), 2);
    }

    #[test]
    fn partial_and_total_configs_share_cache_entries() {
        let (m, site) = demo_module();
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let partial = InliningConfiguration::clean_slate();
        let total = InliningConfiguration::clean_slate().with(site, Decision::NoInline);
        ev.size_of(&partial);
        ev.size_of(&total);
        assert_eq!(ev.compilations(), 1);
    }

    #[test]
    fn compile_returns_the_optimized_module() {
        let (m, site) = demo_module();
        let inc = m.func_by_name("inc").unwrap();
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let cfg = InliningConfiguration::clean_slate().with(site, Decision::Inline);
        let out = ev.compile(&cfg);
        assert!(out.is_stub(inc));
    }

    #[test]
    fn evaluator_is_shareable_across_threads() {
        let (m, site) = demo_module();
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let cfg = InliningConfiguration::clean_slate().with(site, Decision::Inline);
        ev.size_of(&cfg); // prewarm so concurrent queries all hit the cache
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let cfg = InliningConfiguration::clean_slate().with(site, Decision::Inline);
                    ev.size_of(&cfg);
                });
            }
        });
        assert_eq!(ev.compilations(), 1);
        assert_eq!(ev.queries(), 5);
    }

    #[test]
    fn measure_under_size_objective_is_exactly_size_of() {
        let (m, site) = demo_module();
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let cfg = InliningConfiguration::clean_slate().with(site, Decision::Inline);
        let size = ev.size_of(&cfg);
        let measured = ev.measure(&cfg, Objective::Size);
        assert_eq!(measured, Measurement::size_only(size));
        assert_eq!(ev.stats().cycle_measures, 0, "size queries never touch the cycles path");
        assert_eq!(ev.stats().cycle_compiles, 0);
    }

    #[test]
    fn measure_under_speed_objective_carries_memoized_cycles() {
        let (m, site) = demo_module();
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let clean = InliningConfiguration::clean_slate();
        let inlined = InliningConfiguration::clean_slate().with(site, Decision::Inline);
        let a = ev.measure(&clean, Objective::Speed);
        let b = ev.measure(&inlined, Objective::Pareto);
        assert!(a.cycles.is_some() && b.cycles.is_some(), "main is executable");
        // Inlining removes the call overhead on this module: fewer cycles.
        assert!(b.cycles.unwrap() < a.cycles.unwrap(), "{a:?} vs {b:?}");
        // Re-measuring hits the cycles memo: no extra compile.
        let again = ev.measure(&clean, Objective::Speed);
        assert_eq!(a, again);
        let s = ev.stats();
        assert_eq!(s.cycle_measures, 3);
        assert_eq!(s.cycle_compiles, 2, "two distinct configs, one memo hit");
        assert!(s.render().contains("cycles: 3 measures"));
    }

    #[test]
    fn stats_track_queries_compiles_and_cache_behaviour() {
        let (m, site) = demo_module();
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let cfg = InliningConfiguration::clean_slate().with(site, Decision::Inline);
        ev.size_of(&cfg);
        ev.size_of(&cfg);
        ev.size_of(&InliningConfiguration::clean_slate());
        let s = ev.stats();
        assert_eq!(s.queries, 3);
        assert_eq!(s.compiles, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 2);
        assert_eq!(s.full_module_equivalents, 2.0);
        assert!(s.compile_time > Duration::ZERO);
        assert!(!s.render().is_empty());
    }
}
