//! Evaluating configurations: the paper's `CompileAndMeasureSize`.
//!
//! [`CompilerEvaluator`] clones the module, runs the decision-driven
//! inliner plus the `-Os`-like cleanup pipeline, and measures the `.text`
//! size under a [`Target`]. Results are memoized on the configuration's
//! canonical identity (its inlined-site set), so the tree search and the
//! autotuner never pay twice for the same point — the single-machine
//! stand-in for the paper's compile-farm parallelism.

use crate::config::InliningConfiguration;
use optinline_codegen::{text_size, Target};
use optinline_ir::{CallSiteId, Module};
use optinline_opt::{optimize_os, ForcedDecisions, PipelineOptions};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Anything that can score an inlining configuration.
///
/// Implementations must be thread-safe: the tree search and the autotuner
/// evaluate concurrently.
pub trait Evaluator: Sync {
    /// The `.text` size of the module under `config`.
    fn size_of(&self, config: &InliningConfiguration) -> u64;

    /// Number of *distinct* compilations performed so far (cache misses).
    fn compilations(&self) -> u64;

    /// Number of size queries served (including cache hits).
    fn queries(&self) -> u64;
}

/// The standard evaluator: compile the module under the configuration and
/// measure `.text` bytes (memoized).
pub struct CompilerEvaluator {
    module: Module,
    target: Box<dyn Target>,
    options: PipelineOptions,
    sites: BTreeSet<CallSiteId>,
    cache: Mutex<HashMap<BTreeSet<CallSiteId>, u64>>,
    compiles: AtomicU64,
    queries: AtomicU64,
}

impl std::fmt::Debug for CompilerEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompilerEvaluator")
            .field("module", &self.module.name)
            .field("target", &self.target.name())
            .field("sites", &self.sites.len())
            .field("compilations", &self.compilations())
            .finish()
    }
}

impl CompilerEvaluator {
    /// Creates an evaluator for `module` under `target`.
    pub fn new(module: Module, target: Box<dyn Target>) -> Self {
        let sites = module.inlinable_sites();
        CompilerEvaluator {
            module,
            target,
            options: PipelineOptions::default(),
            sites,
            cache: Mutex::new(HashMap::new()),
            compiles: AtomicU64::new(0),
            queries: AtomicU64::new(0),
        }
    }

    /// Overrides the pipeline options (e.g. verify-each for tests).
    pub fn with_options(mut self, options: PipelineOptions) -> Self {
        self.options = options;
        self
    }

    /// The module's inlinable call sites — the configuration domain.
    pub fn sites(&self) -> &BTreeSet<CallSiteId> {
        &self.sites
    }

    /// The pristine input module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The size-model target in use.
    pub fn target(&self) -> &dyn Target {
        self.target.as_ref()
    }

    /// Compiles the module under `config` and returns the optimized module
    /// (uncached; for case-study inspection, not for search loops).
    pub fn compile(&self, config: &InliningConfiguration) -> Module {
        let mut m = self.module.clone();
        let oracle = ForcedDecisions::new(config.decisions().clone());
        optimize_os(&mut m, &oracle, self.options);
        m
    }
}

impl Evaluator for CompilerEvaluator {
    fn size_of(&self, config: &InliningConfiguration) -> u64 {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let key: BTreeSet<CallSiteId> =
            config.inlined_sites().intersection(&self.sites).copied().collect();
        if let Some(&size) = self.cache.lock().expect("poisoned cache").get(&key) {
            return size;
        }
        let optimized = self.compile(config);
        let size = text_size(&optimized, self.target.as_ref());
        self.compiles.fetch_add(1, Ordering::Relaxed);
        self.cache.lock().expect("poisoned cache").insert(key, size);
        size
    }

    fn compilations(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinline_callgraph::Decision;
    use optinline_codegen::X86Like;
    use optinline_ir::{BinOp, FuncBuilder, Linkage};

    fn demo_module() -> (Module, CallSiteId) {
        let mut m = Module::new("m");
        let inc = m.declare_function("inc", 1, Linkage::Internal);
        let main = m.declare_function("main", 0, Linkage::Public);
        {
            let mut b = FuncBuilder::new(&mut m, inc);
            let p = b.param(0);
            let one = b.iconst(1);
            let r = b.bin(BinOp::Add, p, one);
            b.ret(Some(r));
        }
        let site = {
            let mut b = FuncBuilder::new(&mut m, main);
            let x = b.iconst(41);
            let (v, site) = b.call_with_site(inc, &[x]);
            b.ret(Some(v));
            site
        };
        (m, site)
    }

    #[test]
    fn sizes_differ_between_configurations() {
        let (m, site) = demo_module();
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let clean = InliningConfiguration::clean_slate();
        let inlined = InliningConfiguration::clean_slate().with(site, Decision::Inline);
        let s_clean = ev.size_of(&clean);
        let s_inlined = ev.size_of(&inlined);
        assert_ne!(s_clean, s_inlined);
        // inc folds away entirely and dies: inlined must win here.
        assert!(s_inlined < s_clean);
    }

    #[test]
    fn cache_hits_do_not_recompile() {
        let (m, site) = demo_module();
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let cfg = InliningConfiguration::clean_slate().with(site, Decision::Inline);
        let a = ev.size_of(&cfg);
        let b = ev.size_of(&cfg);
        assert_eq!(a, b);
        assert_eq!(ev.compilations(), 1);
        assert_eq!(ev.queries(), 2);
    }

    #[test]
    fn partial_and_total_configs_share_cache_entries() {
        let (m, site) = demo_module();
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let partial = InliningConfiguration::clean_slate();
        let total = InliningConfiguration::clean_slate().with(site, Decision::NoInline);
        ev.size_of(&partial);
        ev.size_of(&total);
        assert_eq!(ev.compilations(), 1);
    }

    #[test]
    fn compile_returns_the_optimized_module() {
        let (m, site) = demo_module();
        let inc = m.func_by_name("inc").unwrap();
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let cfg = InliningConfiguration::clean_slate().with(site, Decision::Inline);
        let out = ev.compile(&cfg);
        assert!(out.is_stub(inc));
    }

    #[test]
    fn evaluator_is_shareable_across_threads() {
        let (m, site) = demo_module();
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let cfg = InliningConfiguration::clean_slate().with(site, Decision::Inline);
        ev.size_of(&cfg); // prewarm so concurrent queries all hit the cache
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let cfg = InliningConfiguration::clean_slate().with(site, Decision::Inline);
                    ev.size_of(&cfg);
                });
            }
        });
        assert_eq!(ev.compilations(), 1);
        assert_eq!(ev.queries(), 5);
    }
}
