//! Component-scoped incremental evaluation.
//!
//! [`CompilerEvaluator`] recompiles the *whole* module for every cache
//! miss, even though an inlining decision can only affect the connected
//! component of the call graph it lives in. [`IncrementalEvaluator`]
//! exploits that: it splits the module once into the connected components
//! of the full call graph ([`coarse_components`]), extracts each as a
//! standalone slice ([`extract_slice`]), and evaluates a configuration as
//!
//! ```text
//! size(config) = constant_part + Σ_c size_c(config ∩ sites(c))
//! ```
//!
//! where `size_c` is memoized per component on the *relevant subset* of
//! decisions. Two configurations that differ only inside component A reuse
//! every other component's result verbatim; the tree search's `Components`
//! recursion and the autotuner's one-flip probes hit exactly that pattern,
//! so most "compilations" shrink from whole-module to one-component work.
//!
//! # Why this is exact
//!
//! Components are *coarse*: every call edge counts, inlinable or not, plus
//! `inline_path` provenance references. Every pass in the `-Os` pipeline
//! is then componentwise — the inliner only rewrites along call edges,
//! the cleanup passes are per-function, dead-function elimination's
//! reachability and the effect summary's fixpoint both propagate only
//! along call edges, and function merging is not part of the pipeline. A
//! slice therefore optimizes to byte-for-byte the same functions as the
//! same component inside a whole-module compile, and since
//! [`function_size`](optinline_codegen::function_size) aligns functions
//! independently, the per-component sizes sum to exactly
//! [`text_size`](optinline_codegen::text_size). The cross-validation suite
//! asserts this identity on randomized modules and configurations.

use crate::cache::ShardedCache;
use crate::config::InliningConfiguration;
use crate::evaluator::{CompilerEvaluator, Evaluator, EvaluatorStats, ModuleEvaluator};
use crate::measure::{module_cycles, Objective};
use optinline_callgraph::{coarse_components, Decision};
use optinline_codegen::{text_size, Target};
use optinline_ir::analysis::EffectSummary;
use optinline_ir::interp::CostModel;
use optinline_ir::{extract_slice, CallSiteId, Measurement, Module};
use optinline_opt::{
    optimize_os_report, optimize_os_report_with_summary, ForcedDecisions, PipelineOptions,
    PipelineStats,
};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One coarse call-graph component, ready to compile in isolation.
struct Component {
    /// Pristine slice of the component's functions.
    slice: Module,
    /// Effect summary of the pristine slice (equals the restriction of the
    /// whole-module summary, since no call edge leaves a coarse component);
    /// computed once here instead of per compile.
    summary: EffectSummary,
    /// Inlinable call sites inside this component.
    sites: BTreeSet<CallSiteId>,
    /// Pristine instruction count — the component's share of compile work.
    insts: u64,
}

/// Component-scoped, memoizing drop-in replacement for
/// [`CompilerEvaluator`]; see the module docs for the decomposition and
/// the exactness argument.
pub struct IncrementalEvaluator {
    module: Module,
    target: Box<dyn Target>,
    options: PipelineOptions,
    sites: BTreeSet<CallSiteId>,
    /// Components that contain at least one inlinable site.
    active: Vec<Component>,
    /// Pristine slices of zero-site components: their size is the same
    /// under every configuration, so they compile once, lazily.
    constant_slices: Vec<Module>,
    constant_part: OnceLock<u64>,
    cache: ShardedCache<(usize, BTreeSet<CallSiteId>), u64>,
    /// Cycles memo over *whole-module* canonical keys: the size
    /// decomposition is exact because every `-Os` pass is componentwise,
    /// but the cost model's i-cache is global, so cycles are measured on
    /// whole-module compiles and memoized separately.
    cycles_cache: ShardedCache<BTreeSet<CallSiteId>, Option<u64>>,
    cost: CostModel,
    queries: AtomicU64,
    compiles: AtomicU64,
    cycle_measures: AtomicU64,
    cycle_compiles: AtomicU64,
    per_component_compiles: Vec<AtomicU64>,
    /// Σ pristine instruction counts over all compiles, for the
    /// full-module-equivalents metric.
    compiled_insts: AtomicU64,
    compile_nanos: AtomicU64,
    module_insts: u64,
    pipeline_stats: Mutex<PipelineStats>,
    scope: OnceLock<u128>,
}

impl std::fmt::Debug for IncrementalEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalEvaluator")
            .field("module", &self.module.name)
            .field("target", &self.target.name())
            .field("sites", &self.sites.len())
            .field("active_components", &self.active.len())
            .field("constant_components", &self.constant_slices.len())
            .finish()
    }
}

impl IncrementalEvaluator {
    /// Creates an evaluator for `module` under `target`, slicing it into
    /// coarse call-graph components up front.
    pub fn new(module: Module, target: Box<dyn Target>) -> Self {
        Self::with_options(module, target, PipelineOptions::default())
    }

    /// [`IncrementalEvaluator::new`] with explicit pipeline options.
    pub fn with_options(module: Module, target: Box<dyn Target>, options: PipelineOptions) -> Self {
        let sites = module.inlinable_sites();
        let mut active = Vec::new();
        let mut constant_slices = Vec::new();
        for comp in coarse_components(&module) {
            let slice = extract_slice(&module, &comp);
            let comp_sites = slice.inlinable_sites();
            if comp_sites.is_empty() {
                constant_slices.push(slice);
            } else {
                let summary = EffectSummary::compute(&slice);
                let insts = slice.inst_count() as u64;
                active.push(Component { slice, summary, sites: comp_sites, insts });
            }
        }
        let module_insts = (module.inst_count() as u64).max(1);
        let per_component_compiles = (0..active.len()).map(|_| AtomicU64::new(0)).collect();
        IncrementalEvaluator {
            module,
            target,
            options,
            sites,
            active,
            constant_slices,
            constant_part: OnceLock::new(),
            cache: ShardedCache::new(),
            cycles_cache: ShardedCache::new(),
            cost: CostModel::default(),
            queries: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            cycle_measures: AtomicU64::new(0),
            cycle_compiles: AtomicU64::new(0),
            per_component_compiles,
            compiled_insts: AtomicU64::new(0),
            compile_nanos: AtomicU64::new(0),
            module_insts,
            pipeline_stats: Mutex::new(PipelineStats::default()),
            scope: OnceLock::new(),
        }
    }

    /// The module's inlinable call sites — the configuration domain.
    pub fn sites(&self) -> &BTreeSet<CallSiteId> {
        &self.sites
    }

    /// The pristine input module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The size-model target in use.
    pub fn target(&self) -> &dyn Target {
        self.target.as_ref()
    }

    /// Number of coarse components (with and without inlinable sites).
    pub fn component_count(&self) -> usize {
        self.active.len() + self.constant_slices.len()
    }

    /// The cost model cycle measurements run under (part of the
    /// cycles-scope identity).
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The simulated cycles of the module under `config`, memoized on the
    /// whole-module canonical inlined-site set. `None` means nothing
    /// executable.
    fn cycles_of(&self, config: &InliningConfiguration) -> Option<u64> {
        let key: BTreeSet<CallSiteId> =
            config.inlined_sites().intersection(&self.sites).copied().collect();
        if let Some(cycles) = self.cycles_cache.get(&key) {
            return cycles;
        }
        let optimized = self.compile(config);
        self.cycle_compiles.fetch_add(1, Ordering::Relaxed);
        let cycles = module_cycles(&optimized, &self.cost);
        self.cycles_cache.insert(key, cycles);
        cycles
    }

    /// Compiles the *whole* module under `config` and returns it
    /// (uncached; for case-study inspection, not for search loops).
    pub fn compile(&self, config: &InliningConfiguration) -> Module {
        let mut m = self.module.clone();
        let oracle = ForcedDecisions::new(config.decisions().clone());
        let report = optimize_os_report(&mut m, &oracle, self.options);
        self.pipeline_stats.lock().unwrap().absorb(&report.stats);
        m
    }

    /// Snapshot of the observability counters.
    pub fn stats(&self) -> EvaluatorStats {
        let cache = self.cache.stats();
        let pipeline = self.pipeline_stats.lock().unwrap().clone();
        EvaluatorStats {
            queries: self.queries.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            shard_loads: cache.shard_loads,
            per_component_compiles: self
                .per_component_compiles
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            compile_time: Duration::from_nanos(self.compile_nanos.load(Ordering::Relaxed)),
            full_module_equivalents: self.compiled_insts.load(Ordering::Relaxed) as f64
                / self.module_insts as f64,
            fixpoint_cap_hits: pipeline.cap_hits,
            pipeline,
            cycle_measures: self.cycle_measures.load(Ordering::Relaxed),
            cycle_compiles: self.cycle_compiles.load(Ordering::Relaxed),
            ..EvaluatorStats::default()
        }
    }

    /// Compiles one pristine slice under `inlined` (a canonical subset of
    /// the slice's own sites) and measures it.
    fn compile_slice(
        &self,
        slice: &Module,
        summary: &EffectSummary,
        inlined: &BTreeSet<CallSiteId>,
    ) -> u64 {
        let mut m = slice.clone();
        let oracle = ForcedDecisions::new(inlined.iter().map(|&s| (s, Decision::Inline)).collect());
        let report =
            optimize_os_report_with_summary(&mut m, &oracle, self.options, summary.clone());
        self.pipeline_stats.lock().unwrap().absorb(&report.stats);
        text_size(&m, self.target.as_ref())
    }

    /// The size contribution of component `idx` under the decision subset
    /// relevant to it, memoized.
    fn component_size(&self, idx: usize, inlined: BTreeSet<CallSiteId>) -> u64 {
        let key = (idx, inlined);
        if let Some(size) = self.cache.get(&key) {
            return size;
        }
        let comp = &self.active[idx];
        let start = Instant::now();
        let size = self.compile_slice(&comp.slice, &comp.summary, &key.1);
        self.record_compile(start, comp.insts);
        self.per_component_compiles[idx].fetch_add(1, Ordering::Relaxed);
        self.cache.insert(key, size);
        size
    }

    /// The configuration-independent contribution of zero-site components,
    /// compiled once on first use.
    fn constant_part(&self) -> u64 {
        *self.constant_part.get_or_init(|| {
            self.constant_slices
                .iter()
                .map(|slice| {
                    let summary = EffectSummary::compute(slice);
                    let start = Instant::now();
                    let size = self.compile_slice(slice, &summary, &BTreeSet::new());
                    self.record_compile(start, slice.inst_count() as u64);
                    size
                })
                .sum()
        })
    }

    fn record_compile(&self, start: Instant, insts: u64) {
        self.compile_nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.compiles.fetch_add(1, Ordering::Relaxed);
        self.compiled_insts.fetch_add(insts, Ordering::Relaxed);
    }
}

impl Evaluator for IncrementalEvaluator {
    fn measure(&self, config: &InliningConfiguration, objective: Objective) -> Measurement {
        if !objective.wants_cycles() {
            return Measurement::size_only(self.size_of(config));
        }
        self.cycle_measures.fetch_add(1, Ordering::Relaxed);
        let size = self.size_of(config);
        match self.cycles_of(config) {
            Some(cycles) => Measurement::with_cycles(size, cycles),
            None => Measurement::size_only(size),
        }
    }

    fn size_of(&self, config: &InliningConfiguration) -> u64 {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let inlined = config.inlined_sites();
        let mut total = self.constant_part();
        for (idx, comp) in self.active.iter().enumerate() {
            let subset: BTreeSet<CallSiteId> = inlined.intersection(&comp.sites).copied().collect();
            total += self.component_size(idx, subset);
        }
        total
    }

    fn compilations(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    fn memo_scope(&self) -> Option<u128> {
        // Same fingerprint as the full evaluator over the same inputs: the
        // decomposition is proven size-identical to whole-module compiles,
        // so the two evaluation modes share one domain.
        Some(*self.scope.get_or_init(|| {
            crate::evaluator::domain_fingerprint(&self.module, self.target.as_ref(), self.options)
        }))
    }
}

impl ModuleEvaluator for IncrementalEvaluator {
    fn module(&self) -> &Module {
        &self.module
    }

    fn sites(&self) -> &BTreeSet<CallSiteId> {
        &self.sites
    }

    fn stats(&self) -> EvaluatorStats {
        IncrementalEvaluator::stats(self)
    }

    fn full_size_of(&self, config: &InliningConfiguration) -> u64 {
        // Deliberately ignores the component decomposition, the memo cache,
        // and the constant part: one whole-module compile, measured fresh —
        // the reference the size oracle cross-checks `size_of` against.
        text_size(&self.compile(config), self.target.as_ref())
    }
}

/// Either compile-strategy behind one concrete type.
#[derive(Debug)]
enum SizeEvaluatorKind {
    /// Whole-module compiles ([`CompilerEvaluator`]).
    Full(CompilerEvaluator),
    /// Component-scoped compiles ([`IncrementalEvaluator`]).
    Incremental(IncrementalEvaluator),
}

/// Either evaluator behind one concrete type, so call sites (CLI flags,
/// experiment drivers) can switch at runtime without generics — optionally
/// with a persistent store scope attached, so owners that can't juggle the
/// borrowed [`PersistentEvaluator`](crate::PersistentEvaluator) wrapper
/// (e.g. the experiments harness, which owns its evaluators) still get
/// cross-run caching.
#[derive(Debug)]
pub struct SizeEvaluator {
    kind: SizeEvaluatorKind,
    persist: Option<std::sync::Arc<crate::PersistentCache>>,
}

impl SizeEvaluator {
    /// Creates the evaluator selected by `incremental`.
    pub fn new(module: Module, target: Box<dyn Target>, incremental: bool) -> Self {
        let kind = if incremental {
            SizeEvaluatorKind::Incremental(IncrementalEvaluator::new(module, target))
        } else {
            SizeEvaluatorKind::Full(CompilerEvaluator::new(module, target))
        };
        SizeEvaluator { kind, persist: None }
    }

    /// Attaches a persistent store scope: `size_of` answers from it before
    /// compiling and records every fresh result. `full_size_of` (the
    /// oracle reference path) deliberately bypasses it.
    pub fn with_persist(mut self, cache: std::sync::Arc<crate::PersistentCache>) -> Self {
        self.persist = Some(cache);
        self
    }

    /// The attached persistent cache, if any.
    pub fn persist(&self) -> Option<&std::sync::Arc<crate::PersistentCache>> {
        self.persist.as_ref()
    }

    /// The module's inlinable call sites — the configuration domain.
    pub fn sites(&self) -> &BTreeSet<CallSiteId> {
        match &self.kind {
            SizeEvaluatorKind::Full(ev) => ev.sites(),
            SizeEvaluatorKind::Incremental(ev) => ev.sites(),
        }
    }

    /// The pristine input module.
    pub fn module(&self) -> &Module {
        match &self.kind {
            SizeEvaluatorKind::Full(ev) => ev.module(),
            SizeEvaluatorKind::Incremental(ev) => ev.module(),
        }
    }

    /// The size-model target in use.
    pub fn target(&self) -> &dyn Target {
        match &self.kind {
            SizeEvaluatorKind::Full(ev) => ev.target(),
            SizeEvaluatorKind::Incremental(ev) => ev.target(),
        }
    }

    /// Snapshot of the observability counters (folding in the attached
    /// persistent scope's counters, when one is attached).
    pub fn stats(&self) -> EvaluatorStats {
        let mut stats = match &self.kind {
            SizeEvaluatorKind::Full(ev) => ev.stats(),
            SizeEvaluatorKind::Incremental(ev) => ev.stats(),
        };
        if let Some(cache) = &self.persist {
            stats.absorb_persist(cache.stats());
        }
        stats
    }

    /// Compiles the whole module under `config` (uncached).
    pub fn compile(&self, config: &InliningConfiguration) -> Module {
        match &self.kind {
            SizeEvaluatorKind::Full(ev) => ev.compile(config),
            SizeEvaluatorKind::Incremental(ev) => ev.compile(config),
        }
    }

    /// The cost model cycle measurements run under (part of the
    /// cycles-scope identity).
    pub fn cost_model(&self) -> &CostModel {
        match &self.kind {
            SizeEvaluatorKind::Full(ev) => ev.cost_model(),
            SizeEvaluatorKind::Incremental(ev) => ev.cost_model(),
        }
    }

    fn inner_size_of(&self, config: &InliningConfiguration) -> u64 {
        match &self.kind {
            SizeEvaluatorKind::Full(ev) => ev.size_of(config),
            SizeEvaluatorKind::Incremental(ev) => ev.size_of(config),
        }
    }

    fn inner_measure(&self, config: &InliningConfiguration, objective: Objective) -> Measurement {
        match &self.kind {
            SizeEvaluatorKind::Full(ev) => ev.measure(config, objective),
            SizeEvaluatorKind::Incremental(ev) => ev.measure(config, objective),
        }
    }
}

impl Evaluator for SizeEvaluator {
    fn size_of(&self, config: &InliningConfiguration) -> u64 {
        let Some(cache) = &self.persist else {
            return self.inner_size_of(config);
        };
        // Same canonical key as the evaluators' own memo tables: the
        // configuration's inlined sites restricted to this module's.
        let key: Vec<CallSiteId> =
            config.inlined_sites().intersection(self.sites()).copied().collect();
        if let Some(found) = cache.get(&key) {
            return found.size;
        }
        let size = self.inner_size_of(config);
        cache.put(key, Measurement::size_only(size));
        size
    }

    fn measure(&self, config: &InliningConfiguration, objective: Objective) -> Measurement {
        if !objective.wants_cycles() {
            return Measurement::size_only(self.size_of(config));
        }
        let Some(cache) = &self.persist else {
            return self.inner_measure(config, objective);
        };
        let key: Vec<CallSiteId> =
            config.inlined_sites().intersection(self.sites()).copied().collect();
        // Only a cycles-carrying entry answers a cycles query; a size-only
        // one falls through so the fresh measurement can upgrade it.
        if let Some(found) = cache.get(&key) {
            if found.cycles.is_some() {
                return found;
            }
        }
        let measured = self.inner_measure(config, objective);
        cache.put(key, measured);
        measured
    }

    fn compilations(&self) -> u64 {
        match &self.kind {
            SizeEvaluatorKind::Full(ev) => ev.compilations(),
            SizeEvaluatorKind::Incremental(ev) => ev.compilations(),
        }
    }

    fn queries(&self) -> u64 {
        match &self.kind {
            SizeEvaluatorKind::Full(ev) => ev.queries(),
            SizeEvaluatorKind::Incremental(ev) => ev.queries(),
        }
    }

    fn memo_scope(&self) -> Option<u128> {
        match &self.kind {
            SizeEvaluatorKind::Full(ev) => ev.memo_scope(),
            SizeEvaluatorKind::Incremental(ev) => ev.memo_scope(),
        }
    }
}

impl ModuleEvaluator for SizeEvaluator {
    fn module(&self) -> &Module {
        SizeEvaluator::module(self)
    }

    fn sites(&self) -> &BTreeSet<CallSiteId> {
        SizeEvaluator::sites(self)
    }

    fn stats(&self) -> EvaluatorStats {
        SizeEvaluator::stats(self)
    }

    fn full_size_of(&self, config: &InliningConfiguration) -> u64 {
        // The reference path must stay independent of every cache,
        // including the persistent store.
        match &self.kind {
            SizeEvaluatorKind::Full(ev) => ev.full_size_of(config),
            SizeEvaluatorKind::Incremental(ev) => ev.full_size_of(config),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinline_codegen::X86Like;
    use optinline_ir::{BinOp, FuncBuilder, Linkage};

    /// Two independent caller→callee pairs plus an isolated leaf: three
    /// coarse components, two of them carrying one site each.
    fn two_component_module() -> (Module, Vec<CallSiteId>) {
        let mut m = Module::new("m");
        let mut sites = Vec::new();
        for i in 0..2 {
            let callee = m.declare_function(format!("callee{i}"), 1, Linkage::Internal);
            let caller = m.declare_function(format!("main{i}"), 0, Linkage::Public);
            {
                let mut b = FuncBuilder::new(&mut m, callee);
                let p = b.param(0);
                let one = b.iconst(1);
                let r = b.bin(BinOp::Add, p, one);
                b.ret(Some(r));
            }
            let mut b = FuncBuilder::new(&mut m, caller);
            let x = b.iconst(41 + i);
            let (v, site) = b.call_with_site(callee, &[x]);
            b.ret(Some(v));
            sites.push(site);
        }
        let lone = m.declare_function("lone", 0, Linkage::Public);
        {
            let mut b = FuncBuilder::new(&mut m, lone);
            let x = b.iconst(5);
            b.ret(Some(x));
        }
        (m, sites)
    }

    #[test]
    fn matches_full_evaluator_on_every_configuration() {
        let (m, sites) = two_component_module();
        let full = CompilerEvaluator::new(m.clone(), Box::new(X86Like));
        let incr = IncrementalEvaluator::new(m, Box::new(X86Like));
        assert_eq!(incr.component_count(), 3);
        for mask in 0..4u32 {
            let cfg: InliningConfiguration = sites
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    let d =
                        if mask & (1 << i) != 0 { Decision::Inline } else { Decision::NoInline };
                    (s, d)
                })
                .collect();
            assert_eq!(full.size_of(&cfg), incr.size_of(&cfg), "mask {mask}");
        }
    }

    #[test]
    fn flipping_one_component_reuses_the_other() {
        let (m, sites) = two_component_module();
        let incr = IncrementalEvaluator::new(m, Box::new(X86Like));
        let base = InliningConfiguration::clean_slate();
        incr.size_of(&base);
        // First query: one compile per active component + constant part.
        let after_base = incr.compilations();
        assert_eq!(after_base, 3);
        // Flip only component 0's site: exactly one new slice compile.
        incr.size_of(&base.with(sites[0], Decision::Inline));
        assert_eq!(incr.compilations(), after_base + 1);
        let s = incr.stats();
        assert_eq!(s.per_component_compiles, vec![2, 1]);
        // Both queries did full-coverage lookups; only 4 of 5 missed... the
        // headline: compile work stayed well under 2 full-module compiles.
        assert!(s.full_module_equivalents < 2.0, "{}", s.full_module_equivalents);
    }

    /// Two components whose wrappers become dead (and DFE-removed) once
    /// their call site is inlined, so dead-function elimination fires in
    /// one component while the other's memoized size must stay valid.
    fn dfe_prone_two_component_module() -> (Module, Vec<CallSiteId>) {
        let mut m = Module::new("dfe");
        let mut sites = Vec::new();
        for i in 0..2 {
            let leaf = m.declare_function(format!("leaf{i}"), 1, Linkage::Internal);
            let wrapper = m.declare_function(format!("wrap{i}"), 1, Linkage::Internal);
            let root = m.declare_function(format!("root{i}"), 0, Linkage::Public);
            {
                let mut b = FuncBuilder::new(&mut m, leaf);
                let p = b.param(0);
                let c = b.iconst(3 + i as i64);
                let r = b.bin(BinOp::Mul, p, c);
                b.ret(Some(r));
            }
            {
                let mut b = FuncBuilder::new(&mut m, wrapper);
                let p = b.param(0);
                let v = b.call(leaf, &[p]).unwrap();
                b.ret(Some(v));
            }
            let mut b = FuncBuilder::new(&mut m, root);
            let x = b.iconst(10 + i as i64);
            let (v, site) = b.call_with_site(wrapper, &[x]);
            b.ret(Some(v));
            sites.push(site);
        }
        (m, sites)
    }

    #[test]
    fn dead_function_elimination_in_one_component_does_not_stale_the_other() {
        let (m, sites) = dfe_prone_two_component_module();
        let incr = IncrementalEvaluator::new(m.clone(), Box::new(X86Like));
        assert_eq!(incr.component_count(), 2);
        // Inlining wrap0's site makes wrap0 dead: the whole-module pipeline
        // runs DeadFunctionElim while component 1 is untouched. Query in an
        // order that forces component 1's memoized entry to be *reused*
        // across component 0's DFE-triggering recompiles, and cross-check
        // every answer against the uncached whole-module reference path.
        let base = InliningConfiguration::clean_slate();
        let order = [
            base.clone(),
            base.clone().with(sites[0], Decision::Inline),
            base.clone(), // reuse both components' memoized sizes
            base.clone().with(sites[0], Decision::Inline).with(sites[1], Decision::Inline),
            base.clone().with(sites[1], Decision::Inline),
        ];
        for (step, cfg) in order.iter().enumerate() {
            assert_eq!(
                incr.size_of(cfg),
                incr.full_size_of(cfg),
                "step {step}: incremental diverged from the whole-module reference"
            );
        }
        // The wrapper really was deleted in the inlined compile — the
        // scenario exercises DFE, not just inlining.
        let inlined = incr.compile(&base.clone().with(sites[0], Decision::Inline));
        let wrap0 = inlined.func_by_name("wrap0").unwrap();
        assert!(inlined.is_stub(wrap0), "wrap0 should be DFE'd once its only call is inlined");
    }

    #[test]
    fn full_size_of_matches_cached_fast_path() {
        let (m, sites) = two_component_module();
        let full = CompilerEvaluator::new(m.clone(), Box::new(X86Like));
        let incr = IncrementalEvaluator::new(m, Box::new(X86Like));
        let cfg = InliningConfiguration::clean_slate().with(sites[0], Decision::Inline);
        for _ in 0..2 {
            // Second round hits the memo caches; reference stays uncached.
            assert_eq!(full.size_of(&cfg), full.full_size_of(&cfg));
            assert_eq!(incr.size_of(&cfg), incr.full_size_of(&cfg));
        }
    }

    #[test]
    fn size_evaluator_variants_agree() {
        let (m, sites) = two_component_module();
        let full = SizeEvaluator::new(m.clone(), Box::new(X86Like), false);
        let incr = SizeEvaluator::new(m, Box::new(X86Like), true);
        let cfg = InliningConfiguration::clean_slate().with(sites[1], Decision::Inline);
        assert_eq!(full.size_of(&cfg), incr.size_of(&cfg));
        assert_eq!(full.sites(), incr.sites());
        assert!(incr.stats().compiles > 0);
    }

    #[test]
    fn size_and_speed_scopes_never_alias_and_survive_compact_and_gc() {
        use crate::measure::objective_scope;
        use crate::persist::{cache_meta, PersistentCache};
        use optinline_callgraph::Decision;
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!("optinline-objscope-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (m, sites) = two_component_module();
        let meta = cache_meta(&m, "x86-like");
        let cfg = InliningConfiguration::clean_slate().with(sites[0], Decision::Inline);
        let domain = SizeEvaluator::new(m.clone(), Box::new(X86Like), false)
            .memo_scope()
            .expect("module-backed evaluators name their domain");
        let cost = CostModel::default();
        let speed_fp = objective_scope(domain, Objective::Speed, &cost);
        assert_ne!(speed_fp, domain);

        // Cold runs: one per objective, each against its own scope.
        let (size_cold, speed_cold);
        {
            let cache = Arc::new(PersistentCache::open_scoped(&dir, domain, None, &meta).unwrap());
            let ev = SizeEvaluator::new(m.clone(), Box::new(X86Like), false).with_persist(cache);
            size_cold = ev.measure(&cfg, Objective::Size);
            assert!(size_cold.cycles.is_none());
        }
        {
            let cache =
                Arc::new(PersistentCache::open_scoped(&dir, speed_fp, None, &meta).unwrap());
            let ev = SizeEvaluator::new(m.clone(), Box::new(X86Like), false).with_persist(cache);
            speed_cold = ev.measure(&cfg, Objective::Speed);
            assert_eq!(speed_cold.size, size_cold.size, "same domain, same sizes");
            assert!(speed_cold.cycles.is_some(), "public mains are executable");
        }

        // Compact and GC (budget generous enough to keep both logs): the
        // two scopes must both survive, still separated.
        {
            let store = optinline_store::LocalStore::shared(&dir).unwrap();
            store.compact_all().unwrap();
            let gc = store.gc(1 << 30).unwrap();
            assert_eq!(gc.evicted_scopes, 0, "both scopes fit the budget");
        }

        // Warm runs: every answer comes from the right scope, with zero
        // compiles and no cycles leaking into the size scope.
        let key: Vec<CallSiteId> =
            cfg.inlined_sites().intersection(&sites.iter().copied().collect()).copied().collect();
        {
            let cache = Arc::new(PersistentCache::open_scoped(&dir, domain, None, &meta).unwrap());
            let ev =
                SizeEvaluator::new(m.clone(), Box::new(X86Like), false).with_persist(cache.clone());
            assert_eq!(ev.measure(&cfg, Objective::Size), size_cold);
            assert_eq!(ev.compilations(), 0, "warm size measure must not compile");
            let raw = cache.get(&key).expect("the size scope holds the entry");
            assert!(raw.cycles.is_none(), "cycles must never alias into the size scope");
        }
        {
            let cache =
                Arc::new(PersistentCache::open_scoped(&dir, speed_fp, None, &meta).unwrap());
            let ev = SizeEvaluator::new(m, Box::new(X86Like), false).with_persist(cache);
            assert_eq!(ev.measure(&cfg, Objective::Speed), speed_cold);
            assert_eq!(ev.compilations(), 0, "warm speed measure must not compile either");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn size_evaluator_with_persist_warm_starts_without_compiling() {
        use crate::persist::{cache_meta, module_fingerprint, PersistentCache};
        let dir =
            std::env::temp_dir().join(format!("optinline-sizeev-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (m, sites) = two_component_module();
        let fp = module_fingerprint(&m, "x86-like");
        let meta = cache_meta(&m, "x86-like");
        let cfg = InliningConfiguration::clean_slate().with(sites[0], Decision::Inline);
        let cold_size;
        {
            let cache = std::sync::Arc::new(PersistentCache::open(&dir, fp, &meta).unwrap());
            let ev = SizeEvaluator::new(m.clone(), Box::new(X86Like), false).with_persist(cache);
            cold_size = ev.size_of(&cfg);
            assert!(ev.compilations() > 0);
            // The reference path must not be served by the store.
            assert_eq!(ev.full_size_of(&cfg), cold_size);
        }
        // Fresh evaluator, same store: the answer comes from disk.
        let cache = std::sync::Arc::new(PersistentCache::open(&dir, fp, &meta).unwrap());
        let ev = SizeEvaluator::new(m, Box::new(X86Like), false).with_persist(cache);
        assert_eq!(ev.size_of(&cfg), cold_size);
        assert_eq!(ev.compilations(), 0, "warm start must not compile");
        let s = ev.stats();
        assert_eq!(s.persist_hits, 1);
        assert!(s.persist_loaded >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
