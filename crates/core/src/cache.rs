//! Sharded concurrent memo cache.
//!
//! The evaluators memoize compile results behind a map keyed by inlining
//! decisions. A single `Mutex<HashMap>` serializes every lookup, which
//! matters once the tree search and the autotuner issue queries from many
//! threads at once: most queries are cache *hits* that hold the lock for a
//! few hundred nanoseconds each, and they all collide. [`ShardedCache`]
//! splits the key space over a fixed power-of-two number of independently
//! locked shards, so concurrent queries only contend when they hash to the
//! same shard (1/16 of the time), and counts hits and misses per shard for
//! the observability surface ([`CacheStats`]).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of shards (a power of two, so shard selection is a mask).
const SHARDS: usize = 16;

/// A concurrent map split over [`SHARDS`] independently locked shards.
pub struct ShardedCache<K, V> {
    shards: Vec<Shard<K, V>>,
}

struct Shard<K, V> {
    map: Mutex<HashMap<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Aggregate hit/miss counts and the per-shard entry distribution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently resident in each shard.
    pub shard_loads: Vec<usize>,
}

impl CacheStats {
    /// Total entries across shards.
    pub fn entries(&self) -> usize {
        self.shard_loads.iter().sum()
    }
}

impl<K: Hash + Eq, V: Clone> ShardedCache<K, V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ShardedCache {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    map: Mutex::new(HashMap::new()),
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &Shard<K, V> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    /// Looks up `key`, counting the outcome as a hit or miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let shard = self.shard(key);
        let found = shard.map.lock().unwrap().get(key).cloned();
        let counter = if found.is_some() { &shard.hits } else { &shard.misses };
        counter.fetch_add(1, Ordering::Relaxed);
        found
    }

    /// Inserts `key → value`. Concurrent inserters of the same key are
    /// harmless for memoization (both computed the same value); the last
    /// write wins.
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key).map.lock().unwrap().insert(key, value);
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.lock().unwrap().len()).sum()
    }

    /// Returns `true` if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss counters and per-shard loads.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.shards.iter().map(|s| s.hits.load(Ordering::Relaxed)).sum(),
            misses: self.shards.iter().map(|s| s.misses.load(Ordering::Relaxed)).sum(),
            shard_loads: self.shards.iter().map(|s| s.map.lock().unwrap().len()).collect(),
        }
    }
}

impl<K: Hash + Eq, V: Clone> Default for ShardedCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> fmt::Debug for ShardedCache<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedCache").field("shards", &self.shards.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get_hits() {
        let c: ShardedCache<u64, u64> = ShardedCache::new();
        assert_eq!(c.get(&1), None);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.entries(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn keys_spread_over_shards() {
        let c: ShardedCache<u64, ()> = ShardedCache::new();
        for k in 0..256 {
            c.insert(k, ());
        }
        let s = c.stats();
        assert_eq!(s.entries(), 256);
        // With 256 keys over 16 shards a fully collapsed distribution would
        // mean the hash ignores the key; require at least a few nonempty.
        assert!(s.shard_loads.iter().filter(|&&n| n > 0).count() >= 4);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let c: ShardedCache<u64, u64> = ShardedCache::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..100 {
                        let k = t * 100 + i;
                        c.insert(k, k * 2);
                        assert_eq!(c.get(&k), Some(k * 2));
                    }
                });
            }
        });
        assert_eq!(c.len(), 400);
    }
}
