//! Sharded concurrent memo cache.
//!
//! The evaluators memoize compile results behind a map keyed by inlining
//! decisions. A single `Mutex<HashMap>` serializes every lookup, which
//! matters once the tree search and the autotuner issue queries from many
//! threads at once: most queries are cache *hits* that hold the lock for a
//! few hundred nanoseconds each, and they all collide. [`ShardedCache`]
//! splits the key space over a fixed power-of-two number of independently
//! locked shards, so concurrent queries only contend when they hash to the
//! same shard (1/16 of the time).
//!
//! Accounting is exact, not approximate: each shard's hit/miss/eviction
//! counters live *inside* the shard mutex and are updated in the same
//! critical section as the map probe, so a [`CacheStats`] snapshot always
//! satisfies `hits + misses == lookups issued` and every counted hit really
//! did observe a resident entry. (An earlier design bumped free-standing
//! atomics after releasing the map lock, which let a concurrently snapshot
//! stats view under- or over-count outcomes relative to map state.)

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Number of shards (a power of two, so shard selection is a mask).
const SHARDS: usize = 16;

/// A concurrent map split over [`SHARDS`] independently locked shards,
/// optionally bounded with FIFO (insertion-order) eviction.
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    /// Per-shard entry bound; `None` means unbounded.
    shard_capacity: Option<usize>,
}

/// One shard: the map plus its outcome counters, all behind one lock so a
/// probe and its accounting are a single atomic step.
struct Shard<K, V> {
    map: HashMap<K, V>,
    /// Insertion order of resident keys, used only when bounded.
    order: VecDeque<K>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K, V> Shard<K, V> {
    fn new() -> Self {
        Shard { map: HashMap::new(), order: VecDeque::new(), hits: 0, misses: 0, evictions: 0 }
    }
}

/// Aggregate hit/miss/eviction counts and the per-shard entry distribution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by the capacity bound (0 for unbounded caches).
    pub evictions: u64,
    /// Entries currently resident in each shard.
    pub shard_loads: Vec<usize>,
}

impl CacheStats {
    /// Total entries across shards.
    pub fn entries(&self) -> usize {
        self.shard_loads.iter().sum()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        Self::with_shard_capacity(None)
    }

    /// Creates an empty cache holding at most `capacity` entries in total.
    ///
    /// The bound is split evenly across shards (rounded up, so a skewed key
    /// distribution can exceed `capacity` by at most `SHARDS - 1` entries).
    /// When a shard is full, the oldest inserted entry in that shard is
    /// evicted and counted in [`CacheStats::evictions`].
    pub fn bounded(capacity: usize) -> Self {
        Self::with_shard_capacity(Some(capacity.div_ceil(SHARDS).max(1)))
    }

    fn with_shard_capacity(shard_capacity: Option<usize>) -> Self {
        ShardedCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            shard_capacity,
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    /// Looks up `key`, counting the outcome as a hit or miss in the same
    /// critical section as the probe.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut shard = self.shard(key).lock().unwrap();
        let found = shard.map.get(key).cloned();
        if found.is_some() {
            shard.hits += 1;
        } else {
            shard.misses += 1;
        }
        found
    }

    /// Inserts `key → value`, evicting the shard's oldest entry first if a
    /// capacity bound is set and the shard is full. Concurrent inserters of
    /// the same key are harmless for memoization (both computed the same
    /// value); the last write wins.
    pub fn insert(&self, key: K, value: V) {
        let mut shard = self.shard(&key).lock().unwrap();
        if shard.map.insert(key.clone(), value).is_none() {
            if let Some(cap) = self.shard_capacity {
                shard.order.push_back(key);
                while shard.map.len() > cap {
                    let oldest = shard.order.pop_front().expect("order tracks residents");
                    shard.map.remove(&oldest);
                    shard.evictions += 1;
                }
            }
        }
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    /// Returns `true` if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss/eviction counters and per-shard loads.
    ///
    /// Each shard is read atomically (counters and load come from one lock
    /// acquisition), so per-shard figures are internally consistent; the
    /// totals are exact once concurrent probes have quiesced.
    pub fn stats(&self) -> CacheStats {
        let mut stats =
            CacheStats { shard_loads: Vec::with_capacity(SHARDS), ..Default::default() };
        for s in &self.shards {
            let s = s.lock().unwrap();
            stats.hits += s.hits;
            stats.misses += s.misses;
            stats.evictions += s.evictions;
            stats.shard_loads.push(s.map.len());
        }
        stats
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Default for ShardedCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> fmt::Debug for ShardedCache<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get_hits() {
        let c: ShardedCache<u64, u64> = ShardedCache::new();
        assert_eq!(c.get(&1), None);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert_eq!(s.entries(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn keys_spread_over_shards() {
        let c: ShardedCache<u64, ()> = ShardedCache::new();
        for k in 0..256 {
            c.insert(k, ());
        }
        let s = c.stats();
        assert_eq!(s.entries(), 256);
        // With 256 keys over 16 shards a fully collapsed distribution would
        // mean the hash ignores the key; require at least a few nonempty.
        assert!(s.shard_loads.iter().filter(|&&n| n > 0).count() >= 4);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let c: ShardedCache<u64, u64> = ShardedCache::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..100 {
                        let k = t * 100 + i;
                        c.insert(k, k * 2);
                        assert_eq!(c.get(&k), Some(k * 2));
                    }
                });
            }
        });
        assert_eq!(c.len(), 400);
    }

    #[test]
    fn concurrent_accounting_totals_are_exact() {
        // Every thread issues a known mix of hits and misses over disjoint
        // key ranges; because outcomes are counted under the shard lock, the
        // aggregate totals must match exactly — not approximately.
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 500;
        let c: ShardedCache<u64, u64> = ShardedCache::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let k = t * PER_THREAD + i;
                        assert_eq!(c.get(&k), None); // miss
                        c.insert(k, k);
                        assert_eq!(c.get(&k), Some(k)); // hit
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.hits, THREADS * PER_THREAD);
        assert_eq!(s.misses, THREADS * PER_THREAD);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.hits + s.misses, 2 * THREADS * PER_THREAD);
        assert_eq!(s.entries(), (THREADS * PER_THREAD) as usize);
    }

    #[test]
    fn bounded_cache_evicts_oldest_and_counts_it() {
        // One entry per shard at most: every insert of a fresh key that
        // lands in an occupied shard must evict that shard's older entry.
        let c: ShardedCache<u64, u64> = ShardedCache::bounded(SHARDS);
        for k in 0..64 {
            c.insert(k, k);
        }
        let s = c.stats();
        assert!(s.entries() <= SHARDS);
        assert_eq!(s.evictions as usize, 64 - s.entries());
        // Re-inserting a resident key neither grows the shard nor evicts.
        let before = c.stats();
        let resident = (0..64).find(|k| c.get(k).is_some()).expect("some key survived");
        c.insert(resident, resident * 10);
        assert_eq!(c.get(&resident), Some(resident * 10));
        assert_eq!(c.stats().evictions, before.evictions);
        assert_eq!(c.stats().entries(), before.entries());
    }

    #[test]
    fn bounded_capacity_rounds_up_per_shard() {
        // capacity 1 still admits one entry per shard rather than zero.
        let c: ShardedCache<u64, u64> = ShardedCache::bounded(1);
        c.insert(7, 70);
        assert_eq!(c.get(&7), Some(70));
        c.insert(7, 71);
        assert_eq!(c.get(&7), Some(71));
        assert_eq!(c.stats().evictions, 0);
    }
}
