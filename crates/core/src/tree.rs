//! The recursively partitioned search space (§3.2): inlining trees.
//!
//! An inlining tree enumerates the full configuration space of a call graph
//! while exploiting two facts — connected components are independent, and a
//! non-inlined bridge behaves like a deleted edge — so the number of
//! compile-and-measure evaluations drops from `2^n` to (often) orders of
//! magnitude fewer, with **no loss of optimality**.
//!
//! - [`build_inlining_tree`] is the paper's Algorithm 2 (tree construction
//!   with a pluggable partition-edge strategy);
//! - [`evaluate_inlining_tree`] is Algorithm 1 (optimal configuration by
//!   bottom-up propagation), with an embarrassingly parallel variant;
//! - [`space_size`] is the evaluation count: leaves plus one extra
//!   evaluation per components node.

use crate::config::InliningConfiguration;
use crate::evaluator::Evaluator;
use optinline_callgraph::{connected_components, Decision, InlineGraph, PartitionStrategy};
use optinline_ir::CallSiteId;
use std::collections::BTreeSet;

/// A node of the inlining tree (§3.2's three node kinds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InliningTree {
    /// All edges on this path are labelled: one configuration to evaluate.
    Leaf,
    /// A partition edge with its two labelings. Evaluation prefers the
    /// `not_inlined` child on ties (Algorithm 1 line 8).
    Binary {
        /// The partition site this node labels.
        site: CallSiteId,
        /// Subtree where the site is not inlined.
        not_inlined: Box<InliningTree>,
        /// Subtree where the site is inlined.
        inlined: Box<InliningTree>,
    },
    /// Independent inlining components, explored separately and combined
    /// with one extra evaluation.
    Components(Vec<InliningTree>),
}

/// Builds the inlining tree of a graph (Algorithm 2).
pub fn build_inlining_tree(graph: &InlineGraph, strategy: PartitionStrategy) -> InliningTree {
    if graph.group_count() == 0 {
        return InliningTree::Leaf;
    }
    // Independent inlining components = undirected components that still
    // contain undecided edges (edgeless leftovers need no exploration).
    let comps: Vec<BTreeSet<_>> = connected_components(graph)
        .into_iter()
        .map(|nodes| nodes.into_iter().collect::<BTreeSet<_>>())
        .filter(|nodes| {
            graph.live_edges().iter().any(|(_, a, b)| nodes.contains(a) || nodes.contains(b))
        })
        .collect();
    if comps.len() > 1 {
        let children = comps
            .into_iter()
            .map(|nodes| build_inlining_tree(&graph.induced(&nodes), strategy))
            .collect();
        return InliningTree::Components(children);
    }
    let site = strategy.select(graph);
    let mut g_no = graph.clone();
    g_no.apply(site, Decision::NoInline);
    let mut g_in = graph.clone();
    g_in.apply(site, Decision::Inline);
    InliningTree::Binary {
        site,
        not_inlined: Box::new(build_inlining_tree(&g_no, strategy)),
        inlined: Box::new(build_inlining_tree(&g_in, strategy)),
    }
}

/// Budget-bounded construction: returns `None` as soon as the tree's
/// evaluation count (leaves + components nodes) would exceed `max_space`.
///
/// Real corpora contain call graphs whose trees are astronomically large
/// (the paper's biggest file alone is `2^349` naïve); this is the only safe
/// way to ask "is this file exhaustively explorable?" without first
/// materializing an unexplorable tree.
pub fn try_build_inlining_tree(
    graph: &InlineGraph,
    strategy: PartitionStrategy,
    max_space: u128,
) -> Option<InliningTree> {
    let mut budget = max_space;
    try_build_inner(graph, strategy, &mut budget)
}

fn try_build_inner(
    graph: &InlineGraph,
    strategy: PartitionStrategy,
    budget: &mut u128,
) -> Option<InliningTree> {
    if graph.group_count() == 0 {
        *budget = budget.checked_sub(1)?;
        return Some(InliningTree::Leaf);
    }
    let comps: Vec<BTreeSet<_>> = connected_components(graph)
        .into_iter()
        .map(|nodes| nodes.into_iter().collect::<BTreeSet<_>>())
        .filter(|nodes| {
            graph.live_edges().iter().any(|(_, a, b)| nodes.contains(a) || nodes.contains(b))
        })
        .collect();
    if comps.len() > 1 {
        *budget = budget.checked_sub(1)?; // the combining evaluation
        let children = comps
            .into_iter()
            .map(|nodes| try_build_inner(&graph.induced(&nodes), strategy, budget))
            .collect::<Option<Vec<_>>>()?;
        return Some(InliningTree::Components(children));
    }
    let site = strategy.select(graph);
    let mut g_no = graph.clone();
    g_no.apply(site, Decision::NoInline);
    let not_inlined = try_build_inner(&g_no, strategy, budget)?;
    let mut g_in = graph.clone();
    g_in.apply(site, Decision::Inline);
    let inlined = try_build_inner(&g_in, strategy, budget)?;
    Some(InliningTree::Binary {
        site,
        not_inlined: Box::new(not_inlined),
        inlined: Box::new(inlined),
    })
}

/// The number of size evaluations exploring this tree costs: one per leaf
/// plus one combination evaluation per components node (§3.2).
///
/// Counts saturate at `u128::MAX` rather than wrapping: leaf counts grow
/// as 2^depth, so a tree deeper than 127 undecided bridges in one chain
/// would silently overflow otherwise — and callers compare this value
/// against budgets, where a wrapped small number would unleash an
/// intractable search instead of rejecting it.
pub fn space_size(tree: &InliningTree) -> u128 {
    match tree {
        InliningTree::Leaf => 1,
        InliningTree::Binary { not_inlined, inlined, .. } => {
            space_size(not_inlined).saturating_add(space_size(inlined))
        }
        InliningTree::Components(children) => {
            children.iter().map(space_size).fold(0u128, u128::saturating_add).saturating_add(1)
        }
    }
}

/// Structural statistics of a tree (for Table 1-style reports and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of leaves.
    pub leaves: u128,
    /// Number of binary nodes.
    pub binary_nodes: u128,
    /// Number of components nodes.
    pub components_nodes: u128,
    /// Maximum depth.
    pub depth: usize,
}

/// Computes [`TreeStats`]. Counters saturate like [`space_size`] so deep
/// trees report `u128::MAX` instead of wrapping.
pub fn tree_stats(tree: &InliningTree) -> TreeStats {
    match tree {
        InliningTree::Leaf => {
            TreeStats { leaves: 1, binary_nodes: 0, components_nodes: 0, depth: 0 }
        }
        InliningTree::Binary { not_inlined, inlined, .. } => {
            let a = tree_stats(not_inlined);
            let b = tree_stats(inlined);
            TreeStats {
                leaves: a.leaves.saturating_add(b.leaves),
                binary_nodes: a.binary_nodes.saturating_add(b.binary_nodes).saturating_add(1),
                components_nodes: a.components_nodes.saturating_add(b.components_nodes),
                depth: a.depth.max(b.depth) + 1,
            }
        }
        InliningTree::Components(children) => {
            let mut s = TreeStats { leaves: 0, binary_nodes: 0, components_nodes: 1, depth: 0 };
            for c in children {
                let cs = tree_stats(c);
                s.leaves = s.leaves.saturating_add(cs.leaves);
                s.binary_nodes = s.binary_nodes.saturating_add(cs.binary_nodes);
                s.components_nodes = s.components_nodes.saturating_add(cs.components_nodes);
                s.depth = s.depth.max(cs.depth + 1);
            }
            s
        }
    }
}

/// Evaluates the tree, returning an optimal configuration and its size
/// (Algorithm 1). `base` carries the decisions accumulated on the path —
/// pass the clean slate at the root.
pub fn evaluate_inlining_tree(
    tree: &InliningTree,
    evaluator: &dyn Evaluator,
    base: InliningConfiguration,
) -> (InliningConfiguration, u64) {
    evaluate_inner(tree, evaluator, base, 0)
}

/// Parallel variant: children of the top `par_depth` tree levels fan out
/// over the process-wide [`WorkerPool`](crate::WorkerPool) — persistent
/// threads with help-first joins, so deep recursion costs no thread spawns
/// and an idle sibling steals queued work instead of blocking. The
/// evaluation scheme is embarrassingly parallel (§3.2); memoization in the
/// evaluator keeps duplicated partial configurations cheap.
pub fn evaluate_inlining_tree_parallel(
    tree: &InliningTree,
    evaluator: &dyn Evaluator,
    base: InliningConfiguration,
    par_depth: usize,
) -> (InliningConfiguration, u64) {
    evaluate_inner(tree, evaluator, base, par_depth)
}

fn evaluate_inner(
    tree: &InliningTree,
    evaluator: &dyn Evaluator,
    base: InliningConfiguration,
    par: usize,
) -> (InliningConfiguration, u64) {
    // Safe to unwind here even mid-fan-out: `join`/`map` resurface a
    // closure panic only after every borrowed job has settled.
    optinline_ir::cancel::checkpoint();
    match tree {
        InliningTree::Leaf => {
            let size = evaluator.size_of(&base);
            (base, size)
        }
        InliningTree::Binary { site, not_inlined, inlined } => {
            let base_no = base.clone().with(*site, Decision::NoInline);
            let base_in = base.with(*site, Decision::Inline);
            let ((c1, s1), (c2, s2)) = if par > 0 {
                crate::pool::WorkerPool::global().join(
                    || evaluate_inner(not_inlined, evaluator, base_no, par - 1),
                    || evaluate_inner(inlined, evaluator, base_in, par - 1),
                )
            } else {
                (
                    evaluate_inner(not_inlined, evaluator, base_no, 0),
                    evaluate_inner(inlined, evaluator, base_in, 0),
                )
            };
            if s1 <= s2 {
                (c1, s1)
            } else {
                (c2, s2)
            }
        }
        InliningTree::Components(children) => {
            let results: Vec<(InliningConfiguration, u64)> = if par > 0 {
                crate::pool::WorkerPool::global()
                    .map(children, |c| evaluate_inner(c, evaluator, base.clone(), par - 1))
            } else {
                children.iter().map(|c| evaluate_inner(c, evaluator, base.clone(), 0)).collect()
            };
            let mut merged = base;
            for (c, _) in &results {
                merged.merge(c);
            }
            let size = evaluator.size_of(&merged);
            (merged, size)
        }
    }
}

/// Convenience: builds and evaluates the tree for an evaluator's module.
/// Works against any [`ModuleEvaluator`] — the full
/// [`CompilerEvaluator`](crate::CompilerEvaluator) or the component-scoped
/// [`IncrementalEvaluator`](crate::IncrementalEvaluator).
pub fn optimal_configuration(
    evaluator: &dyn crate::evaluator::ModuleEvaluator,
    strategy: PartitionStrategy,
) -> crate::naive::SearchOutcome {
    let graph = InlineGraph::from_module(evaluator.module());
    let tree = build_inlining_tree(&graph, strategy);
    let evals = space_size(&tree);
    let (config, size) =
        evaluate_inlining_tree(&tree, evaluator, InliningConfiguration::clean_slate());
    crate::naive::SearchOutcome { config, size, evaluations: evals }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 5a: F→G, G→K, K→L, L→H, H→I (sites s0..s4).
    fn fig5() -> InlineGraph {
        InlineGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    }

    /// Figure 4: two components {F→G, G→K} and {H→L}.
    fn fig4() -> InlineGraph {
        InlineGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)])
    }

    #[test]
    fn space_size_stays_exact_on_deep_chains_and_saturates_instead_of_wrapping() {
        // A 300-deep degenerate binary chain: far past where u8/u16 depth
        // counters or a doubling u64 would misbehave, yet exactly countable
        // (each level adds one leaf).
        let mut tree = InliningTree::Leaf;
        for i in 0..300u32 {
            tree = InliningTree::Binary {
                site: CallSiteId::new(i),
                not_inlined: Box::new(InliningTree::Leaf),
                inlined: Box::new(tree),
            };
        }
        assert_eq!(space_size(&tree), 301);
        let stats = tree_stats(&tree);
        assert_eq!(stats.leaves, 301);
        assert_eq!(stats.binary_nodes, 300);
        assert_eq!(stats.depth, 300);
        // Empty components node still costs its one combining evaluation.
        assert_eq!(space_size(&InliningTree::Components(Vec::new())), 1);
    }

    #[test]
    fn fig4_space_matches_paper() {
        // 2^2 + 2^1 + 1 (combination) = 7… the paper's §3.1 counts 2^2+2^1=6
        // *configurations*; our space_size counts *evaluations*, which adds
        // the combining compile of the components node.
        let tree = build_inlining_tree(&fig4(), PartitionStrategy::Paper);
        assert!(matches!(tree, InliningTree::Components(_)));
        // Components of sizes 2 and 1: subtree leaves 4 and 2, plus 1.
        assert_eq!(space_size(&tree), 7);
    }

    #[test]
    fn fig5_space_matches_paper_section_3_2() {
        // Paper: partitioning on K→L gives (2^2 + 2^2 + 1) + 2^4 = 25.
        let tree = build_inlining_tree(&fig5(), PartitionStrategy::Paper);
        assert_eq!(space_size(&tree), 25);
        // Versus naïve 2^5 = 32.
        assert!(space_size(&tree) < 32);
    }

    #[test]
    fn first_edge_strategy_degrades_on_fig5() {
        // Selecting edges left-to-right still creates some partitions on a
        // chain, but fewer than the central-bridge choice at the root.
        let paper = space_size(&build_inlining_tree(&fig5(), PartitionStrategy::Paper));
        let naive = 1u128 << 5;
        assert!(paper < naive);
    }

    #[test]
    fn star_graph_has_no_partitioning_gain_at_the_root() {
        // K callers of one callee (coupled only pairwise): every edge shares
        // the hub, so no-inline deletions do split off the spokes.
        let g = InlineGraph::from_edges(4, &[(1, 0), (2, 0), (3, 0)]);
        let tree = build_inlining_tree(&g, PartitionStrategy::Paper);
        let s = space_size(&tree);
        assert!(s <= 8, "star of 3 spokes must not exceed naive 8, got {s}");
    }

    #[test]
    fn tree_stats_are_consistent_with_space_size() {
        let tree = build_inlining_tree(&fig5(), PartitionStrategy::Paper);
        let stats = tree_stats(&tree);
        assert_eq!(stats.leaves + stats.components_nodes, space_size(&tree));
        assert!(stats.depth >= 3);
    }

    #[test]
    fn single_edge_graph_builds_binary_over_leaves() {
        let g = InlineGraph::from_edges(2, &[(0, 1)]);
        let tree = build_inlining_tree(&g, PartitionStrategy::Paper);
        match &tree {
            InliningTree::Binary { not_inlined, inlined, .. } => {
                assert_eq!(**not_inlined, InliningTree::Leaf);
                assert_eq!(**inlined, InliningTree::Leaf);
            }
            other => panic!("expected binary root, got {other:?}"),
        }
        assert_eq!(space_size(&tree), 2);
    }

    #[test]
    fn self_loop_only_graph_terminates() {
        let g = InlineGraph::from_edges(1, &[(0, 0)]);
        let tree = build_inlining_tree(&g, PartitionStrategy::Paper);
        assert_eq!(space_size(&tree), 2);
    }

    #[test]
    fn random_strategy_trees_stay_within_partitioning_overhead() {
        // A bad strategy can even exceed the naive count slightly: each
        // components node adds one combining evaluation (§3.2's +1 terms).
        // It can never exceed naive plus one combine per internal node.
        for seed in 0..5 {
            let s = space_size(&build_inlining_tree(&fig5(), PartitionStrategy::Random(seed)));
            assert!(s <= 2 * 32, "seed {seed}: {s} far beyond naive 32");
            assert!(s >= 6, "seed {seed}: impossibly small space {s}");
        }
    }
}
