//! # optinline-core
//!
//! The paper's contribution, as a library: **optimal function inlining for
//! binary size** via a recursively partitioned exhaustive search, and a
//! **local inlining autotuner** that exploits what the optimal
//! configurations look like.
//!
//! *Reproduces:* T. Theodoridis, T. Grosser, Z. Su, "Understanding and
//! Exploiting Optimal Function Inlining", ASPLOS 2022.
//!
//! ## The pieces
//!
//! - [`InliningConfiguration`] — `{inline, no-inline}` labels per call site
//!   (§2), with coupled copies handled upstream by stable site ids.
//! - [`CompilerEvaluator`] — `CompileAndMeasureSize`: run the
//!   decision-driven inliner + `-Os` pipeline, measure `.text` bytes;
//!   memoized and thread-safe.
//! - [`naive`] — the `2^n` exhaustive search (§3.1), the ground truth.
//! - [`tree`] — the inlining tree (§3.2, Algorithms 1–2): provably the same
//!   optimum, at a fraction of the evaluations.
//! - [`autotune`] — the local autotuner (§5, Algorithm 3) with clean-slate,
//!   heuristic-initialized, round-based, and combined modes.
//! - [`analysis`] — decision agreement (Table 2), inlined-chain lengths
//!   (Figure 9), roofline statistics (Figures 7/16).
//!
//! ## Quick start
//!
//! ```
//! use optinline_ir::{Module, Linkage, FuncBuilder, BinOp};
//! use optinline_core::{CompilerEvaluator, tree, autotune::Autotuner};
//! use optinline_callgraph::PartitionStrategy;
//! use optinline_codegen::X86Like;
//!
//! // A module with one inlinable call.
//! let mut m = Module::new("demo");
//! let inc = m.declare_function("inc", 1, Linkage::Internal);
//! let main = m.declare_function("main", 0, Linkage::Public);
//! {
//!     let mut b = FuncBuilder::new(&mut m, inc);
//!     let p = b.param(0);
//!     let one = b.iconst(1);
//!     let r = b.bin(BinOp::Add, p, one);
//!     b.ret(Some(r));
//! }
//! {
//!     let mut b = FuncBuilder::new(&mut m, main);
//!     let x = b.iconst(41);
//!     let v = b.call(inc, &[x]);
//!     b.ret(v);
//! }
//!
//! let ev = CompilerEvaluator::new(m, Box::new(X86Like));
//! // Exhaustive optimum through the recursively partitioned space.
//! let optimal = tree::optimal_configuration(&ev, PartitionStrategy::Paper);
//! // One autotuning round finds the same thing here.
//! let tuned = Autotuner::new(&ev, ev.sites().clone()).clean_slate(1);
//! assert_eq!(tuned.best().size, optimal.size);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod autotune;
mod cache;
mod config;
mod dag;
mod evaluator;
pub mod farm;
mod incremental;
mod measure;
pub mod naive;
mod pareto;
mod persist;
mod pool;
pub mod tree;

pub use cache::{CacheStats, ShardedCache};
pub use config::InliningConfiguration;
pub use dag::{evaluate_inlining_tree_dag, ExecutorStats, SearchSession};
pub use evaluator::{
    evaluation_identity, CompilerEvaluator, Evaluator, EvaluatorStats, ModuleEvaluator,
};
pub use incremental::{IncrementalEvaluator, SizeEvaluator};
pub use measure::{
    cost_model_fingerprint, module_cycles, objective_scope, Objective, SpeedEvaluator,
};
pub use naive::{exhaustive_search, SearchOutcome};
pub use pareto::{ParetoFront, ParetoPoint};
pub use persist::{
    cache_meta, module_fingerprint, PersistStats, PersistentCache, PersistentEvaluator,
};
pub use pool::WorkerPool;
pub use tree::{
    build_inlining_tree, evaluate_inlining_tree, evaluate_inlining_tree_parallel, space_size,
    try_build_inlining_tree, InliningTree,
};

#[cfg(test)]
mod cross_validation {
    //! The core soundness check: on real modules, the recursively
    //! partitioned search finds exactly the naïve optimum.

    use crate::evaluator::{CompilerEvaluator, Evaluator};
    use crate::naive::exhaustive_search;
    use crate::tree::{build_inlining_tree, evaluate_inlining_tree, space_size};
    use crate::InliningConfiguration;
    use optinline_callgraph::{InlineGraph, PartitionStrategy};
    use optinline_codegen::X86Like;
    use optinline_ir::{BinOp, FuncBuilder, Linkage, Module};

    /// Builds a module realizing an arbitrary call-graph shape with varied
    /// bodies (some fold when inlined, some are fat).
    fn module_from_shape(n_funcs: usize, edges: &[(usize, usize)], seed: u64) -> Module {
        let mut m = Module::new(format!("shape{seed}"));
        let ids: Vec<_> = (0..n_funcs)
            .map(|i| {
                let linkage = if i == 0 { Linkage::Public } else { Linkage::Internal };
                m.declare_function(format!("f{i}"), 1, linkage)
            })
            .collect();
        let mut rng = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for (i, &fid) in ids.iter().enumerate() {
            let callees: Vec<_> =
                edges.iter().filter(|&&(a, _)| a == i).map(|&(_, b)| ids[b]).collect();
            let mut b = FuncBuilder::new(&mut m, fid);
            let p = b.param(0);
            let mut acc = p;
            let body_len = (next() % 5) as usize;
            for _ in 0..body_len {
                let c = b.iconst((next() % 17) as i64);
                let op = [BinOp::Add, BinOp::Xor, BinOp::Mul][(next() % 3) as usize];
                acc = b.bin(op, acc, c);
            }
            for callee in callees {
                let arg = if next() % 2 == 0 { b.iconst((next() % 9) as i64) } else { acc };
                acc = b.call(callee, &[arg]).unwrap();
            }
            b.ret(Some(acc));
        }
        optinline_ir::assert_verified(&m);
        m
    }

    fn check_shape(n: usize, edges: &[(usize, usize)], seed: u64) {
        let m = module_from_shape(n, edges, seed);
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let sites = ev.sites().clone();
        let naive = exhaustive_search(&ev, &sites);
        for strategy in
            [PartitionStrategy::Paper, PartitionStrategy::FirstEdge, PartitionStrategy::Random(7)]
        {
            let graph = InlineGraph::from_module(ev.module());
            let tree = build_inlining_tree(&graph, strategy);
            let (config, size) =
                evaluate_inlining_tree(&tree, &ev, InliningConfiguration::clean_slate());
            assert_eq!(
                size, naive.size,
                "strategy {strategy:?} seed {seed}: tree size {size} != naive {}\nconfig {config}",
                naive.size
            );
        }
    }

    #[test]
    fn tree_matches_naive_on_chain() {
        check_shape(4, &[(0, 1), (1, 2), (2, 3)], 1);
    }

    #[test]
    fn tree_matches_naive_on_fig5_chain() {
        check_shape(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)], 2);
    }

    #[test]
    fn tree_matches_naive_on_diamond() {
        check_shape(4, &[(0, 1), (0, 2), (1, 3), (2, 3)], 3);
    }

    #[test]
    fn tree_matches_naive_on_star() {
        check_shape(5, &[(0, 1), (0, 2), (0, 3), (0, 4)], 4);
    }

    #[test]
    fn tree_matches_naive_on_two_components() {
        check_shape(5, &[(0, 1), (2, 3), (3, 4)], 5);
    }

    #[test]
    fn tree_matches_naive_on_shared_callee() {
        // Figure 2: A→B, B→C, D→B (coupled copies arise when A→B inlines).
        check_shape(4, &[(0, 1), (1, 2), (3, 1)], 6);
    }

    #[test]
    fn tree_matches_naive_on_cycles() {
        check_shape(3, &[(0, 1), (1, 2), (2, 0)], 7);
        check_shape(2, &[(0, 1), (1, 0)], 8);
    }

    #[test]
    fn tree_matches_naive_on_self_recursion() {
        check_shape(2, &[(0, 0), (0, 1)], 9);
    }

    #[test]
    fn tree_matches_naive_on_dense_random_shapes() {
        for seed in 10u64..16 {
            let n = 3 + (seed as usize % 3);
            let mut edges = Vec::new();
            let mut x: u64 = seed.wrapping_mul(0x2545F4914F6CDD1D) + 1;
            let mut next = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for _ in 0..(3 + seed % 4) {
                edges.push(((next() % n as u64) as usize, (next() % n as u64) as usize));
            }
            check_shape(n, &edges, seed);
        }
    }

    #[test]
    fn memoization_keeps_tree_evaluations_at_or_under_space_size() {
        let m = module_from_shape(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)], 42);
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let graph = InlineGraph::from_module(ev.module());
        let tree = build_inlining_tree(&graph, PartitionStrategy::Paper);
        let space = space_size(&tree);
        evaluate_inlining_tree(&tree, &ev, InliningConfiguration::clean_slate());
        assert!(u128::from(ev.compilations()) <= space);
        assert!(space < 1u128 << ev.sites().len());
    }
}
