//! Inlining configurations: the assignment of `{inline, no-inline}` labels
//! to call sites (§2 of the paper).

use optinline_callgraph::Decision;
use optinline_ir::CallSiteId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An (possibly partial) inlining configuration.
///
/// Sites absent from the map are treated as `NoInline` — the paper's "clean
/// slate" default — which also makes structurally equal partial and total
/// configurations evaluate identically.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InliningConfiguration {
    decisions: BTreeMap<CallSiteId, Decision>,
}

impl InliningConfiguration {
    /// The empty (clean-slate) configuration: everything no-inline.
    pub fn clean_slate() -> Self {
        Self::default()
    }

    /// Builds a configuration from explicit decisions.
    pub fn from_decisions(decisions: BTreeMap<CallSiteId, Decision>) -> Self {
        InliningConfiguration { decisions }
    }

    /// The effective decision for a site (`NoInline` when unset).
    pub fn decision(&self, site: CallSiteId) -> Decision {
        self.decisions.get(&site).copied().unwrap_or(Decision::NoInline)
    }

    /// Sets a site's decision, returning `self` for chaining.
    pub fn with(mut self, site: CallSiteId, decision: Decision) -> Self {
        self.decisions.insert(site, decision);
        self
    }

    /// Sets a site's decision in place.
    pub fn set(&mut self, site: CallSiteId, decision: Decision) {
        self.decisions.insert(site, decision);
    }

    /// Flips a site's effective decision.
    pub fn flip(&mut self, site: CallSiteId) {
        let d = self.decision(site);
        self.decisions.insert(site, d.flipped());
    }

    /// The explicitly recorded decisions.
    pub fn decisions(&self) -> &BTreeMap<CallSiteId, Decision> {
        &self.decisions
    }

    /// Sites currently labelled `Inline` — the canonical identity of the
    /// configuration (used as the evaluator cache key).
    pub fn inlined_sites(&self) -> BTreeSet<CallSiteId> {
        self.decisions.iter().filter(|(_, &d)| d == Decision::Inline).map(|(&s, _)| s).collect()
    }

    /// Number of sites labelled `Inline`.
    pub fn inlined_count(&self) -> usize {
        self.decisions.values().filter(|&&d| d == Decision::Inline).count()
    }

    /// Number of sites explicitly labelled `NoInline`.
    pub fn no_inline_count(&self) -> usize {
        self.decisions.values().filter(|&&d| d == Decision::NoInline).count()
    }

    /// Merges `other`'s decisions into `self` (overwriting on conflict).
    pub fn merge(&mut self, other: &InliningConfiguration) {
        for (&s, &d) in &other.decisions {
            self.decisions.insert(s, d);
        }
    }

    /// Restricts the configuration to the given site set (canonicalizing
    /// away decisions about sites a module doesn't have).
    pub fn restricted_to(&self, sites: &BTreeSet<CallSiteId>) -> Self {
        InliningConfiguration {
            decisions: self
                .decisions
                .iter()
                .filter(|(s, _)| sites.contains(s))
                .map(|(&s, &d)| (s, d))
                .collect(),
        }
    }

    /// Builds the total configuration over `sites` where exactly the bits
    /// of `mask` are inlined (bit *i* ↔ *i*-th site in order). Used by the
    /// naïve exhaustive search.
    ///
    /// # Panics
    ///
    /// Panics if `sites` has more than 127 elements (mask width).
    pub fn from_mask(sites: &BTreeSet<CallSiteId>, mask: u128) -> Self {
        assert!(sites.len() < 128, "mask-based enumeration is capped at 127 sites");
        let decisions = sites
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let d =
                    if mask & (1u128 << i) != 0 { Decision::Inline } else { Decision::NoInline };
                (s, d)
            })
            .collect();
        InliningConfiguration { decisions }
    }
}

impl fmt::Display for InliningConfiguration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (s, d)) in self.decisions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let label = match d {
                Decision::Inline => "inline",
                Decision::NoInline => "no-inline",
            };
            write!(f, "{s}: {label}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(CallSiteId, Decision)> for InliningConfiguration {
    fn from_iter<T: IntoIterator<Item = (CallSiteId, Decision)>>(iter: T) -> Self {
        InliningConfiguration { decisions: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    #[test]
    fn unset_sites_default_to_no_inline() {
        let c = InliningConfiguration::clean_slate();
        assert_eq!(c.decision(s(5)), Decision::NoInline);
        assert_eq!(c.inlined_count(), 0);
    }

    #[test]
    fn flip_toggles_effective_decision() {
        let mut c = InliningConfiguration::clean_slate();
        c.flip(s(1));
        assert_eq!(c.decision(s(1)), Decision::Inline);
        c.flip(s(1));
        assert_eq!(c.decision(s(1)), Decision::NoInline);
    }

    #[test]
    fn inlined_sites_is_canonical_under_partiality() {
        let partial = InliningConfiguration::clean_slate().with(s(2), Decision::Inline);
        let total = InliningConfiguration::clean_slate()
            .with(s(1), Decision::NoInline)
            .with(s(2), Decision::Inline)
            .with(s(3), Decision::NoInline);
        assert_eq!(partial.inlined_sites(), total.inlined_sites());
    }

    #[test]
    fn merge_overwrites_conflicts() {
        let mut a = InliningConfiguration::clean_slate().with(s(1), Decision::NoInline);
        let b = InliningConfiguration::clean_slate().with(s(1), Decision::Inline);
        a.merge(&b);
        assert_eq!(a.decision(s(1)), Decision::Inline);
    }

    #[test]
    fn from_mask_enumerates_bit_patterns() {
        let sites: BTreeSet<_> = [s(10), s(20), s(30)].into_iter().collect();
        let c = InliningConfiguration::from_mask(&sites, 0b101);
        assert_eq!(c.decision(s(10)), Decision::Inline);
        assert_eq!(c.decision(s(20)), Decision::NoInline);
        assert_eq!(c.decision(s(30)), Decision::Inline);
        assert_eq!(c.inlined_count(), 2);
    }

    #[test]
    fn restricted_to_drops_foreign_sites() {
        let c = InliningConfiguration::clean_slate()
            .with(s(1), Decision::Inline)
            .with(s(9), Decision::Inline);
        let keep: BTreeSet<_> = [s(1)].into_iter().collect();
        let r = c.restricted_to(&keep);
        assert_eq!(r.decisions().len(), 1);
        assert_eq!(r.decision(s(1)), Decision::Inline);
    }

    #[test]
    fn display_is_compact() {
        let c = InliningConfiguration::clean_slate().with(s(1), Decision::Inline);
        assert_eq!(c.to_string(), "{s1: inline}");
    }
}
