//! Deterministic Pareto front over (size, cycles) measurements.
//!
//! The multi-objective autotuner does not pick one winner: it maintains
//! the set of configurations no other configuration *dominates* (smaller
//! or equal in both metrics, strictly smaller in one — see
//! [`Measurement::dominates`]). The front here is deliberately boring:
//! a sorted `Vec` with insertion-time pruning, because reproducibility
//! matters more than asymptotics at the scale of inlining search spaces.
//! Insertion order cannot change the resulting front — dominance is
//! transitive-free of ties thanks to a lexicographic tiebreak on the
//! canonical inlined-site key — so parallel producers can feed a front
//! through any interleaving and end at the same set.

use crate::config::InliningConfiguration;
use optinline_ir::{CallSiteId, Measurement};

/// One non-dominated configuration and its measurement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParetoPoint {
    /// The configuration.
    pub config: InliningConfiguration,
    /// Its measurement.
    pub measurement: Measurement,
    /// Canonical identity: the configuration's inlined sites, sorted.
    /// Doubles as the deterministic tiebreak between measurement-equal
    /// configurations.
    key: Vec<CallSiteId>,
}

/// The set of non-dominated (configuration, measurement) points, kept
/// sorted by `(size, cycles, key)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParetoFront {
    points: Vec<ParetoPoint>,
}

impl ParetoFront {
    /// An empty front.
    pub fn new() -> ParetoFront {
        ParetoFront::default()
    }

    /// Offers a point to the front. Returns `true` if the point joined
    /// (possibly displacing points it dominates), `false` if an existing
    /// point dominates it — or ties it exactly with a lexicographically
    /// smaller key, the deterministic duplicate rule.
    pub fn insert(&mut self, config: InliningConfiguration, measurement: Measurement) -> bool {
        let key: Vec<CallSiteId> = config.inlined_sites().into_iter().collect();
        for p in &self.points {
            if p.measurement.dominates(&measurement) {
                return false;
            }
            if p.measurement == measurement && p.key <= key {
                return false;
            }
        }
        self.points.retain(|p| {
            let displaced = measurement.dominates(&p.measurement)
                || (p.measurement == measurement && key < p.key);
            !displaced
        });
        let point = ParetoPoint { config, measurement, key };
        let at = self
            .points
            .partition_point(|p| (p.measurement, &p.key) < (point.measurement, &point.key));
        self.points.insert(at, point);
        true
    }

    /// The non-dominated points, sorted by `(size, cycles, key)`.
    pub fn points(&self) -> &[ParetoPoint] {
        &self.points
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point with the smallest size (`None` on an empty front). With
    /// the sort order, this is simply the first point.
    pub fn min_size(&self) -> Option<&ParetoPoint> {
        self.points.first()
    }

    /// The point with the smallest cycle count among cycles-carrying
    /// points (`None` when no point carries cycles).
    pub fn min_cycles(&self) -> Option<&ParetoPoint> {
        self.points
            .iter()
            .filter(|p| p.measurement.cycles.is_some())
            .min_by_key(|p| (p.measurement.cycles, p.measurement.size, &p.key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinline_callgraph::Decision;

    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    fn cfg(inlined: &[u32]) -> InliningConfiguration {
        inlined.iter().map(|&i| (s(i), Decision::Inline)).collect()
    }

    fn mc(size: u64, cycles: u64) -> Measurement {
        Measurement::with_cycles(size, cycles)
    }

    #[test]
    fn dominated_points_are_rejected_and_displaced() {
        let mut front = ParetoFront::new();
        assert!(front.insert(cfg(&[]), mc(100, 100)));
        // Strictly better in one metric, equal in the other: joins, and
        // the old point survives only if not dominated.
        assert!(front.insert(cfg(&[1]), mc(100, 50)));
        assert_eq!(front.len(), 1, "equal size, fewer cycles dominates");
        assert!(front.insert(cfg(&[2]), mc(50, 200)));
        assert_eq!(front.len(), 2, "a size/cycles trade-off coexists");
        // Dominated by (50, 200): rejected outright.
        assert!(!front.insert(cfg(&[3]), mc(60, 200)));
        // Dominates everything: the front collapses to it.
        assert!(front.insert(cfg(&[4]), mc(10, 10)));
        assert_eq!(front.len(), 1);
        assert_eq!(front.points()[0].measurement, mc(10, 10));
    }

    #[test]
    fn insertion_order_cannot_change_the_front() {
        let points = [
            (cfg(&[]), mc(100, 100)),
            (cfg(&[1]), mc(80, 120)),
            (cfg(&[2]), mc(120, 80)),
            (cfg(&[1, 2]), mc(90, 90)),
            (cfg(&[3]), mc(80, 130)),
        ];
        let mut orders = vec![vec![0, 1, 2, 3, 4], vec![4, 3, 2, 1, 0], vec![2, 4, 0, 3, 1]];
        let fronts: Vec<ParetoFront> = orders
            .drain(..)
            .map(|order| {
                let mut f = ParetoFront::new();
                for i in order {
                    let (c, m) = points[i].clone();
                    f.insert(c, m);
                }
                f
            })
            .collect();
        assert_eq!(fronts[0], fronts[1]);
        assert_eq!(fronts[0], fronts[2]);
        // (100,100) is dominated by (90,90); (80,130) by (80,120).
        assert_eq!(fronts[0].len(), 3);
    }

    #[test]
    fn measurement_ties_keep_the_lexicographically_smallest_config() {
        for (first, second) in [(cfg(&[2]), cfg(&[1])), (cfg(&[1]), cfg(&[2]))] {
            let mut front = ParetoFront::new();
            front.insert(first, mc(70, 70));
            front.insert(second, mc(70, 70));
            assert_eq!(front.len(), 1);
            assert_eq!(front.points()[0].key, vec![s(1)], "ties resolve by key, not arrival");
        }
    }

    #[test]
    fn size_only_and_measured_points_coexist() {
        // A size-only point (no executable to measure) is incomparable to
        // a cycles-carrying one: neither dominates.
        let mut front = ParetoFront::new();
        assert!(front.insert(cfg(&[]), Measurement::size_only(100)));
        assert!(front.insert(cfg(&[1]), mc(120, 10)));
        assert_eq!(front.len(), 2);
        assert_eq!(front.min_size().unwrap().measurement.size, 100);
        assert_eq!(front.min_cycles().unwrap().measurement, mc(120, 10));
        // Among size-only points themselves, plain size dominance applies.
        assert!(front.insert(cfg(&[2]), Measurement::size_only(90)));
        assert_eq!(front.len(), 2);
    }
}
