//! A persistent work-stealing worker pool (std-only).
//!
//! The tree search ([`crate::tree`]) and the autotuner
//! ([`crate::autotune`]) both fan work out across threads. Spawning scoped
//! threads at every recursion node pays a thread-creation tax per node and
//! statically splits work that is wildly uneven (one subtree may compile
//! 100× more modules than its sibling). This pool fixes both:
//!
//! - **Persistent workers.** `available_parallelism() - 1` threads are
//!   started once (lazily, via [`WorkerPool::global`]) and reused for every
//!   `join`/`map` in the process.
//! - **Help-first semantics.** The caller always participates: `join` runs
//!   the first closure inline and only offloads the second; `map` claims
//!   items from a shared atomic index alongside the helpers. A blocked
//!   caller *helps* — it pops and runs other queued jobs while waiting — so
//!   nested `join`/`map` calls (the tree recursion) cannot deadlock even
//!   when every worker is busy.
//! - **Dynamic balancing.** `map` hands out items one atomic increment at a
//!   time instead of pre-chunking, so a thread that drew cheap items simply
//!   claims more; nobody idles behind a straggler.
//!
//! # Safety
//!
//! Jobs borrow the caller's stack (like `std::thread::scope`). The borrow
//! is erased to `'static` to sit in the shared queue, which is sound
//! because both `join` and `map` block until every job they pushed has
//! either been executed or been reclaimed from the queue *and* every
//! borrowing closure has signalled completion — no reference outlives the
//! call that created it.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, shrugging off poisoning: the pool's shared state (a job
/// queue) is never left mid-mutation across a panic point, so a poisoned
/// lock only means *some* thread died — the data is still consistent and
/// the pool must keep serving rather than cascade `unwrap` panics into
/// every other thread.
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fixed-size pool of persistent worker threads. See the module docs.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.threads).finish()
    }
}

struct PoolInner {
    queue: Mutex<VecDeque<(u64, Job)>>,
    available: Condvar,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    /// Live worker threads; kept at the configured count by the respawn
    /// guard even when a job panic kills a worker.
    alive: AtomicUsize,
}

/// Restores pool capacity when a worker dies of a panic: spawns a
/// replacement thread unless the pool is shutting down. Armed for the whole
/// life of a worker thread; a clean (shutdown) exit only decrements the
/// live count.
struct RespawnGuard {
    inner: Arc<PoolInner>,
    index: usize,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        self.inner.alive.fetch_sub(1, Ordering::SeqCst);
        if std::thread::panicking() && !self.inner.shutdown.load(Ordering::Acquire) {
            spawn_worker(Arc::clone(&self.inner), self.index);
        }
    }
}

/// Starts one worker thread (initial startup and panic respawn).
fn spawn_worker(inner: Arc<PoolInner>, index: usize) {
    let for_thread = Arc::clone(&inner);
    inner.alive.fetch_add(1, Ordering::SeqCst);
    let spawned =
        std::thread::Builder::new().name(format!("optinline-worker-{index}")).spawn(move || {
            let guard = RespawnGuard { inner: for_thread, index };
            worker_loop(&guard.inner);
        });
    if spawned.is_err() {
        // Could not start the thread at all; don't count a ghost worker.
        inner.alive.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Raw pointer that may cross threads; the pool's blocking protocol keeps
/// the pointee alive for as long as any job can dereference it.
struct SendPtr<T>(*const T);
unsafe impl<T> Send for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

impl WorkerPool {
    /// The process-wide pool, started on first use with
    /// `available_parallelism() - 1` workers (the calling thread is the
    /// extra lane — both `join` and `map` keep the caller working).
    pub fn global() -> &'static WorkerPool {
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            WorkerPool::new(n.saturating_sub(1))
        })
    }

    /// Creates a pool with exactly `threads` workers. `threads == 0` is
    /// valid: every job then runs on the calling thread (reclaimed from the
    /// queue or executed through the help loop), which keeps single-core
    /// behaviour identical, just sequential.
    pub fn new(threads: usize) -> Self {
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            alive: AtomicUsize::new(0),
        });
        for i in 0..threads {
            spawn_worker(Arc::clone(&inner), i);
        }
        WorkerPool { inner, threads }
    }

    /// Number of worker threads (not counting callers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of currently live worker threads. Transiently below
    /// [`threads`](WorkerPool::threads) while a panicked worker is being
    /// respawned; converges back to it.
    pub fn alive_workers(&self) -> usize {
        self.inner.alive.load(Ordering::SeqCst)
    }

    /// Submits a fire-and-forget job.
    ///
    /// Unlike [`join`](WorkerPool::join)/[`map`](WorkerPool::map) jobs,
    /// which capture their own panics and resurface them at the submitting
    /// call site, a `spawn`ed job has no caller waiting: if it panics, the
    /// worker running it dies and is respawned, and the panic is otherwise
    /// dropped (or contained, when a helping caller stole the job). The
    /// pool itself stays fully serviceable either way.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.push(Box::new(job));
    }

    /// Runs `a` and `b`, potentially in parallel, and returns both results.
    ///
    /// `a` runs on the calling thread; `b` is offered to the pool. If no
    /// worker picks `b` up by the time `a` finishes, the caller reclaims
    /// and runs it inline — the fork is free when the pool is saturated.
    /// A panic in either closure resurfaces here after both have settled.
    pub fn join<RA, RB, A, B>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        struct JoinState<R> {
            result: UnsafeCell<Option<std::thread::Result<R>>>,
            done: AtomicBool,
        }
        // The pool writes `result` exactly once, strictly before releasing
        // `done`; the caller reads it strictly after acquiring `done`.
        unsafe impl<R: Send> Sync for JoinState<R> {}

        let state = JoinState::<RB> { result: UnsafeCell::new(None), done: AtomicBool::new(false) };
        let ptr = SendPtr(&state as *const JoinState<RB>);
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let ptr = ptr; // capture the whole SendPtr, not the raw field
            let s = unsafe { &*ptr.0 };
            let r = catch_unwind(AssertUnwindSafe(b));
            unsafe { *s.result.get() = Some(r) };
            s.done.store(true, Ordering::Release);
        });
        // Safety: this function does not return (nor unwind) before `done`
        // is observed, so the borrows inside `job` stay valid while it can
        // still run. See the module-level safety note.
        let id = self.push(unsafe { erase(job) });

        let ra = catch_unwind(AssertUnwindSafe(a));
        if let Some(job) = self.reclaim(id) {
            job();
        } else {
            self.help_until(|| state.done.load(Ordering::Acquire));
        }
        let rb = unsafe { (*state.result.get()).take().expect("join job completed") };
        match (ra, rb) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            (Err(p), _) | (_, Err(p)) => resume_unwind(p),
        }
    }

    /// Applies `f` to every item, in parallel, preserving order.
    ///
    /// Items are claimed one at a time from a shared atomic cursor by the
    /// caller and up to `threads` helper jobs, so uneven per-item cost
    /// balances dynamically. Results land in per-index slots: the output
    /// is deterministic (ordered like `items`) regardless of which thread
    /// computed what. The first panic from `f` resurfaces after all
    /// helpers have settled.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        struct Slot<R>(UnsafeCell<Option<R>>);
        // Each slot is written by exactly one claimant (the unique thread
        // that won index i from the cursor) and read only after `done`
        // reaches the item count.
        unsafe impl<R: Send> Sync for Slot<R> {}

        struct MapShared<'a, T, R, F> {
            items: &'a [T],
            f: &'a F,
            slots: &'a [Slot<R>],
            next: AtomicUsize,
            done: AtomicUsize,
            exited: AtomicUsize,
            panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
        }

        fn drive<T, R, F: Fn(&T) -> R>(s: &MapShared<'_, T, R, F>) {
            loop {
                let i = s.next.fetch_add(1, Ordering::Relaxed);
                if i >= s.items.len() {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| (s.f)(&s.items[i]))) {
                    Ok(v) => unsafe { *s.slots[i].0.get() = Some(v) },
                    Err(p) => {
                        let mut slot = s.panic.lock().unwrap();
                        slot.get_or_insert(p);
                    }
                }
                s.done.fetch_add(1, Ordering::Release);
            }
        }

        if items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let slots: Vec<Slot<R>> = (0..items.len()).map(|_| Slot(UnsafeCell::new(None))).collect();
        let shared = MapShared {
            items,
            f: &f,
            slots: &slots,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            exited: AtomicUsize::new(0),
            panic: Mutex::new(None),
        };
        let helpers = self.threads.min(items.len() - 1);
        let ptr = SendPtr(&shared as *const MapShared<'_, T, R, F>);
        let ids: Vec<u64> = (0..helpers)
            .map(|_| {
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let ptr = ptr; // capture the whole SendPtr, not the raw field
                    let s = unsafe { &*ptr.0 };
                    drive(s);
                    s.exited.fetch_add(1, Ordering::Release);
                });
                // Safety: `map` blocks below until `exited == helpers`,
                // which each job signals only after its last use of the
                // borrowed state.
                self.push(unsafe { erase(job) })
            })
            .collect();

        drive(&shared);
        // Helpers still sitting in the queue would find the cursor
        // exhausted anyway; reclaim and run them inline so the wait below
        // cannot depend on queue drain order.
        for id in ids {
            if let Some(job) = self.reclaim(id) {
                job();
            }
        }
        self.help_until(|| {
            shared.done.load(Ordering::Acquire) == items.len()
                && shared.exited.load(Ordering::Acquire) == helpers
        });

        if let Some(p) = shared.panic.lock().unwrap().take() {
            resume_unwind(p);
        }
        slots.into_iter().map(|s| s.0.into_inner().expect("every map slot written")).collect()
    }

    fn push(&self, job: Job) -> u64 {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        lock_ignore_poison(&self.inner.queue).push_back((id, job));
        self.inner.available.notify_one();
        id
    }

    /// Removes a still-queued job by id; `None` means a worker already took
    /// it (or is running it now).
    fn reclaim(&self, id: u64) -> Option<Job> {
        let mut q = lock_ignore_poison(&self.inner.queue);
        let pos = q.iter().position(|(i, _)| *i == id)?;
        Some(q.remove(pos).expect("position in bounds").1)
    }

    /// Runs queued jobs (any jobs — that's the stealing) until `ready`
    /// holds, parking briefly when the queue is empty.
    ///
    /// Stolen jobs run under `catch_unwind`: `join` and `map` must not
    /// unwind past their completion flags (the borrow-erasure safety
    /// contract), so a panicking fire-and-forget job stolen here is
    /// contained — `join`/`map` jobs carry their own capture-and-report
    /// panic handling and are unaffected by the extra guard.
    fn help_until(&self, ready: impl Fn() -> bool) {
        while !ready() {
            let job = lock_ignore_poison(&self.inner.queue).pop_front();
            match job {
                Some((_, job)) => {
                    // Stolen jobs may belong to a *different* request than
                    // the one this thread is helping for; mask the thread's
                    // cancel token so one request's cancellation cannot
                    // unwind another request's work.
                    let _mask = optinline_ir::cancel::suspend();
                    drop(catch_unwind(AssertUnwindSafe(job)));
                }
                None => std::thread::park_timeout(Duration::from_micros(50)),
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.available.notify_all();
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut q = lock_ignore_poison(&inner.queue);
            loop {
                if let Some((_, job)) = q.pop_front() {
                    break Some(job);
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                q = inner.available.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            // `join`/`map` jobs contain their own panic capture; a raw
            // `spawn` job may panic through here, killing this worker — the
            // thread's `RespawnGuard` then starts a replacement, so pool
            // capacity survives. The job runs outside the queue lock, so a
            // panic cannot poison shared state mid-mutation.
            Some(job) => job(),
            None => return,
        }
    }
}

/// Erases a job's borrow lifetime so it can sit in the shared queue.
///
/// # Safety
///
/// The caller must not return (or unwind) before the job has run to
/// completion or been reclaimed from the queue — `join` and `map` enforce
/// this with their completion flags.
unsafe fn erase(job: Box<dyn FnOnce() + Send + '_>) -> Job {
    std::mem::transmute(job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn join_returns_both_results() {
        let pool = WorkerPool::new(2);
        let x = 10;
        let (a, b) = pool.join(|| x + 1, || x + 2);
        assert_eq!((a, b), (11, 12));
    }

    #[test]
    fn join_works_with_zero_workers() {
        let pool = WorkerPool::new(0);
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn map_preserves_order_and_covers_all_items() {
        let pool = WorkerPool::new(3);
        let items: Vec<u64> = (0..200).collect();
        let out = pool.map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(pool.map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn nested_joins_do_not_deadlock() {
        // Deeper than the worker count, so progress relies on help-first.
        let pool = WorkerPool::new(2);
        fn fib(pool: &WorkerPool, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
            a + b
        }
        assert_eq!(fib(&pool, 16), 987);
    }

    #[test]
    fn map_inside_map_does_not_deadlock() {
        let pool = WorkerPool::new(2);
        let rows: Vec<u64> = (0..8).collect();
        let out = pool.map(&rows, |&r| {
            let cols: Vec<u64> = (0..8).collect();
            pool.map(&cols, |&c| r * 10 + c).into_iter().sum::<u64>()
        });
        let expect: Vec<u64> = (0..8).map(|r| (0..8).map(|c| r * 10 + c).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn map_balances_uneven_work() {
        // One pathological item must not serialize the rest: with dynamic
        // claiming, total wall time ≈ the one slow item, not slow × chunk.
        let pool = WorkerPool::new(3);
        let items: Vec<u64> = (0..64).collect();
        let counter = AtomicU32::new(0);
        let out = pool.map(&items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            if x == 0 {
                std::thread::sleep(Duration::from_millis(20));
            }
            x
        });
        assert_eq!(out, items);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn panics_propagate_from_map() {
        let pool = WorkerPool::new(2);
        let items: Vec<u32> = (0..16).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, |&x| {
                if x == 7 {
                    panic!("boom on 7");
                }
                x
            })
        }));
        assert!(result.is_err());
        // The pool stays usable afterwards.
        assert_eq!(pool.map(&items, |&x| x + 1)[0], 1);
    }

    #[test]
    fn panics_propagate_from_join() {
        let pool = WorkerPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| pool.join(|| 1, || panic!("b panics"))));
        assert!(r.is_err());
        let r = catch_unwind(AssertUnwindSafe(|| pool.join(|| panic!("a panics"), || 2)));
        assert!(r.is_err());
        assert_eq!(pool.join(|| 1, || 2), (1, 2));
    }

    /// Spin-waits (bounded) until `cond` holds; panics on timeout.
    fn wait_for(what: &str, cond: impl Fn() -> bool) {
        for _ in 0..2000 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("timed out waiting for {what}");
    }

    #[test]
    fn panicking_spawn_jobs_do_not_poison_or_shrink_the_pool() {
        let pool = WorkerPool::new(2);
        wait_for("workers up", || pool.alive_workers() == 2);
        // More panicking jobs than workers: every worker dies at least once
        // if it picks one up; each death must respawn a replacement.
        for _ in 0..8 {
            pool.spawn(|| panic!("worker-killing job"));
        }
        // The pool keeps serving work correctly throughout...
        let items: Vec<u64> = (0..64).collect();
        for _ in 0..4 {
            let out = pool.map(&items, |&x| x + 1);
            assert_eq!(out, items.iter().map(|x| x + 1).collect::<Vec<_>>());
        }
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
        // ...and worker capacity converges back to the configured count.
        wait_for("respawn", || pool.alive_workers() == 2);
    }

    #[test]
    fn panicking_spawn_then_shutdown_does_not_deadlock() {
        let pool = WorkerPool::new(1);
        wait_for("worker up", || pool.alive_workers() == 1);
        pool.spawn(|| panic!("boom"));
        wait_for("respawn", || pool.alive_workers() == 1);
        drop(pool); // must not hang on a dead or poisoned worker
    }

    #[test]
    fn spawn_runs_fire_and_forget_jobs() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        wait_for("jobs drained", || counter.load(Ordering::SeqCst) == 16);
    }

    #[test]
    fn helping_caller_contains_a_stolen_panicking_job() {
        let pool = WorkerPool::new(1);
        wait_for("worker up", || pool.alive_workers() == 1);
        // The offered half sleeps on the sole worker while the inline half
        // enqueues a panicking fire-and-forget job, so the caller usually
        // ends up in the help loop and steals it. Whether the caller or a
        // worker runs the panicking job, `join` must return normally.
        let (a, b) = pool.join(
            || {
                pool.spawn(|| panic!("stolen panicking job"));
                1
            },
            || {
                std::thread::sleep(Duration::from_millis(50));
                2
            },
        );
        assert_eq!((a, b), (1, 2));
        let items: Vec<u32> = (0..32).collect();
        assert_eq!(pool.map(&items, |&x| x * 2)[31], 62);
        wait_for("capacity restored", || pool.alive_workers() == 1);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = WorkerPool::global() as *const WorkerPool;
        let b = WorkerPool::global() as *const WorkerPool;
        assert_eq!(a, b);
    }

    #[test]
    fn respawn_after_panic_drains_already_queued_jobs() {
        // Regression test for the DAG executor's lane drivers: a panicking
        // job in front of a full queue must not strand the jobs behind it.
        // The replacement worker (RespawnGuard) has to pick up the same
        // shared queue and drain everything that was enqueued *before* the
        // panic happened.
        let pool = WorkerPool::new(1);
        let done = Arc::new(AtomicU32::new(0));
        pool.spawn(|| {
            std::thread::sleep(Duration::from_millis(20));
            panic!("queue-head job dies");
        });
        for _ in 0..64 {
            let done = Arc::clone(&done);
            pool.spawn(move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        wait_for("queued jobs survive the respawn", || done.load(Ordering::Relaxed) == 64);
        wait_for("capacity restored", || pool.alive_workers() == 1);
    }
}
