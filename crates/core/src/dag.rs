//! The task-DAG search executor: Algorithm 1 as an explicit dependency
//! graph instead of a recursive walk.
//!
//! [`evaluate_inlining_tree`](crate::tree::evaluate_inlining_tree) recurses
//! down an [`InliningTree`], which serializes sibling subtrees unless the
//! recursion explicitly forks, and re-derives identical subproblems from
//! scratch on every invocation. This module flattens the tree into tasks —
//! leaf compiles, binary combines, components combines — wired by explicit
//! dependency edges, and drives the ready set over per-worker deques with
//! work stealing on the existing [`WorkerPool`]:
//!
//! - **Determinism.** A `Binary` node resolves from its *recorded* child
//!   results (prefer `not_inlined` when `size_no <= size_yes`, Algorithm 1
//!   line 8), never from completion order; a `Components` node merges child
//!   configurations in child order. The result is byte-identical to the
//!   sequential walk at any worker count — the parallel-search oracle in
//!   `optinline-check` asserts exactly that.
//! - **Work stealing.** Each driver owns a deque: own-lane pops are LIFO
//!   (depth-first, cache-warm), steals are FIFO from the victim's cold end.
//!   Completing a task decrements its parent's pending count; the driver
//!   that completes the last child pushes the parent onto its own lane.
//! - **Hash-consing.** Every subtree task carries a canonical subproblem
//!   key — the evaluator's domain scope ([`Evaluator::memo_scope`]), a
//!   stable 128-bit fingerprint of the subtree's induced shape and
//!   decided-edge labeling (including the base's explicit decisions on the
//!   subtree's own partition sites), and the canonical (inlined-site)
//!   identity of the base configuration on its path. A [`SearchSession`]
//!   memoizes finished subproblems on that key, so structurally identical
//!   subtrees across rounds, strategy ablations, and autotuner restarts
//!   collapse to constant tasks instead of re-evaluating. The scope makes
//!   a session safe to share across *different modules* — site ids are
//!   minted densely per module, so two modules' trees can collide on shape
//!   and numbering alone; evaluators that cannot name their domain
//!   (`memo_scope() == None`) simply skip session memoization. Warm hits
//!   replay the memoized subtree decisions onto the caller's own base, so
//!   even a session-warm result stays byte-identical to the sequential
//!   walk. (Within one cold tree every path carries a distinct decision
//!   set, so dedup hits measure *cross*-evaluation sharing — the
//!   equality-saturation-style reuse the session exists for.)
//!
//! The executor is a scheduling layer only: every size number still comes
//! from the [`Evaluator`], with all its memoization intact.

use crate::config::InliningConfiguration;
use crate::evaluator::Evaluator;
use crate::pool::WorkerPool;
use crate::tree::InliningTree;
use optinline_callgraph::{Decision, Fnv128};
use optinline_ir::CallSiteId;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Counters the executor reports after a run (see
/// [`EvaluatorStats`](crate::EvaluatorStats) for the merged surface).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Tasks materialized in the DAG (dedup-elided subtrees count once, as
    /// their constant task).
    pub tasks: u64,
    /// Tasks executed from another lane's deque (work stealing).
    pub steals: u64,
    /// Subproblems resolved from the session's hash-cons table instead of
    /// being evaluated.
    pub dedup_hits: u64,
}

/// The canonical identity of a subproblem: the evaluator's domain scope
/// ([`Evaluator::memo_scope`]), the subtree's structural fingerprint, and
/// the canonical (inlined-site) identity of the base configuration
/// accumulated on the path to it.
type SubKey = (u128, u128, Vec<CallSiteId>);

/// Cross-evaluation memoization shared by DAG runs: finished subproblems
/// keyed by their canonical identity, plus cumulative executor counters.
///
/// One session spans as many [`evaluate_inlining_tree_dag`] calls as the
/// caller likes — autotuner restarts, repeated rounds, strategy ablations,
/// even different modules (the experiment harness shares one session
/// across a whole suite): keys carry the evaluator's
/// [`memo_scope`](Evaluator::memo_scope), so domains never alias.
/// Identical subproblems (same domain, same residual search structure,
/// same canonical base) are evaluated once per session.
#[derive(Debug, Default)]
pub struct SearchSession {
    memo: Mutex<HashMap<SubKey, (InliningConfiguration, u64)>>,
    tasks: AtomicU64,
    steals: AtomicU64,
    dedup_hits: AtomicU64,
}

impl SearchSession {
    /// An empty session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative counters across every run this session drove.
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            tasks: self.tasks.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized subproblems.
    pub fn memo_len(&self) -> usize {
        self.memo.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    fn lookup(&self, key: &SubKey) -> Option<(InliningConfiguration, u64)> {
        self.memo.lock().unwrap_or_else(std::sync::PoisonError::into_inner).get(key).cloned()
    }

    fn record(&self, key: SubKey, result: (InliningConfiguration, u64)) {
        self.memo.lock().unwrap_or_else(std::sync::PoisonError::into_inner).insert(key, result);
    }
}

/// The structural fingerprint of a subproblem: a stable 128-bit digest
/// over the subtree's exact shape and site labels, plus the base
/// configuration's *explicit* decision (if any) on each of the subtree's
/// own partition sites. Subtrees are built from residual call graphs, so
/// equal fingerprints mean equal induced subgraphs *and* equal
/// partition-edge labelings — the concrete identity hash-consing needs
/// (shape-isomorphic subtrees over different sites must not collide).
/// Folding in the base's decisions on subtree sites keeps [`replay`]
/// exact: two bases in the same key class agree explicitly on every site
/// the memoized result may have committed.
fn tree_fingerprint(tree: &InliningTree, base: &InliningConfiguration) -> u128 {
    fn absorb(tree: &InliningTree, base: &InliningConfiguration, h: &mut Fnv128) {
        match tree {
            InliningTree::Leaf => h.write_u8(0),
            InliningTree::Binary { site, not_inlined, inlined } => {
                h.write_u8(1);
                h.write_u32(site.as_u32());
                h.write_u8(match base.decisions().get(site) {
                    None => 0,
                    Some(Decision::NoInline) => 1,
                    Some(Decision::Inline) => 2,
                });
                absorb(not_inlined, base, h);
                absorb(inlined, base, h);
            }
            InliningTree::Components(children) => {
                h.write_u8(2);
                h.write_u32(children.len() as u32);
                for c in children {
                    absorb(c, base, h);
                }
            }
        }
    }
    let mut h = Fnv128::new();
    absorb(tree, base, &mut h);
    h.finish()
}

fn subproblem_key(tree: &InliningTree, base: &InliningConfiguration, scope: u128) -> SubKey {
    (scope, tree_fingerprint(tree, base), base.inlined_sites().into_iter().collect())
}

/// Rebuilds, from a memoized result, the exact configuration the
/// sequential walk would return for `base`: start from the caller's own
/// base and replay the explicit decisions the memoized run committed on
/// the subtree's partition sites. The memoized configuration may carry
/// entries from *its* recording base (ancestor `NoInline` decisions,
/// foreign sites) that the caller's base never mentions — those stay out;
/// entries the caller's base carries stay in. The subproblem key
/// guarantees both bases agree explicitly on the subtree's own sites, so
/// the replayed configuration is byte-identical to a fresh evaluation.
fn replay(
    tree: &InliningTree,
    memoized: &InliningConfiguration,
    mut base: InliningConfiguration,
) -> InliningConfiguration {
    fn walk(
        tree: &InliningTree,
        memoized: &InliningConfiguration,
        out: &mut InliningConfiguration,
    ) {
        match tree {
            InliningTree::Leaf => {}
            InliningTree::Binary { site, not_inlined, inlined } => {
                if let Some(&d) = memoized.decisions().get(site) {
                    out.set(*site, d);
                }
                walk(not_inlined, memoized, out);
                walk(inlined, memoized, out);
            }
            InliningTree::Components(children) => {
                for c in children {
                    walk(c, memoized, out);
                }
            }
        }
    }
    walk(tree, memoized, &mut base);
    base
}

/// What a task computes once its dependencies are settled.
enum TaskKind {
    /// Evaluate the base configuration as-is.
    Leaf { base: InliningConfiguration },
    /// Pick the smaller child, preferring `not_inlined` on ties
    /// (children: `[not_inlined, inlined]`).
    Binary,
    /// Merge all child configurations into `base` (child order) and
    /// evaluate the merged configuration.
    Combine { base: InliningConfiguration },
    /// Result known up front (session hash-cons hit).
    Const { result: (InliningConfiguration, u64) },
}

struct Task {
    kind: TaskKind,
    /// Dependency task ids, in deterministic child order.
    children: Vec<usize>,
    parent: Option<usize>,
    /// Unresolved dependencies; the task is ready at zero.
    pending: AtomicUsize,
    result: OnceLock<(InliningConfiguration, u64)>,
    /// Record the finished result under this key in the session.
    key: Option<SubKey>,
}

/// Flattens `tree` into `tasks`, returning the root task id. `session`
/// short-circuits known subproblems into [`TaskKind::Const`] tasks;
/// `scope` is the evaluator's memo scope (`None` disables memoization —
/// the session then only accumulates counters).
fn flatten(
    tree: &InliningTree,
    base: InliningConfiguration,
    parent: Option<usize>,
    tasks: &mut Vec<Task>,
    session: Option<&SearchSession>,
    scope: Option<u128>,
    dedup_hits: &mut u64,
) -> usize {
    let key = match (session, scope) {
        (Some(_), Some(sc)) => Some(subproblem_key(tree, &base, sc)),
        _ => None,
    };
    if let (Some(s), Some(k)) = (session, key.as_ref()) {
        if let Some((memo_cfg, size)) = s.lookup(k) {
            *dedup_hits += 1;
            let id = tasks.len();
            tasks.push(Task {
                kind: TaskKind::Const { result: (replay(tree, &memo_cfg, base), size) },
                children: Vec::new(),
                parent,
                pending: AtomicUsize::new(0),
                result: OnceLock::new(),
                key: None,
            });
            return id;
        }
    }
    let id = tasks.len();
    // Reserve the slot first so children can name their parent.
    tasks.push(Task {
        kind: TaskKind::Const { result: (InliningConfiguration::clean_slate(), 0) },
        children: Vec::new(),
        parent,
        pending: AtomicUsize::new(0),
        result: OnceLock::new(),
        key,
    });
    match tree {
        InliningTree::Leaf => {
            tasks[id].kind = TaskKind::Leaf { base };
        }
        InliningTree::Binary { site, not_inlined, inlined } => {
            let base_no = base.clone().with(*site, Decision::NoInline);
            let base_in = base.with(*site, Decision::Inline);
            let no = flatten(not_inlined, base_no, Some(id), tasks, session, scope, dedup_hits);
            let yes = flatten(inlined, base_in, Some(id), tasks, session, scope, dedup_hits);
            tasks[id].kind = TaskKind::Binary;
            tasks[id].children = vec![no, yes];
            tasks[id].pending = AtomicUsize::new(2);
        }
        InliningTree::Components(children) => {
            let ids: Vec<usize> = children
                .iter()
                .map(|c| flatten(c, base.clone(), Some(id), tasks, session, scope, dedup_hits))
                .collect();
            let n = ids.len();
            tasks[id].kind = TaskKind::Combine { base };
            tasks[id].children = ids;
            tasks[id].pending = AtomicUsize::new(n);
        }
    }
    id
}

/// Everything the lane drivers share during one run.
struct Run<'a> {
    tasks: &'a [Task],
    lanes: Vec<Mutex<VecDeque<usize>>>,
    evaluator: &'a dyn Evaluator,
    completed: AtomicUsize,
    steals: AtomicU64,
    aborted: AtomicBool,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    session: Option<&'a SearchSession>,
}

impl Run<'_> {
    fn execute(&self, id: usize) {
        // Checkpoint here, not in `drive`: the unwind is caught per-task
        // and converted into the abort flag, so every lane exits before
        // the panic resurfaces at the call site.
        optinline_ir::cancel::checkpoint();
        let task = &self.tasks[id];
        let child = |i: usize| {
            self.tasks[task.children[i]].result.get().expect("dependency settled before parent")
        };
        let result = match &task.kind {
            TaskKind::Const { result } => result.clone(),
            TaskKind::Leaf { base } => {
                let size = self.evaluator.size_of(base);
                (base.clone(), size)
            }
            TaskKind::Binary => {
                // Resolve from recorded results, preferring `not_inlined`
                // on ties — identical to Algorithm 1's sequential rule,
                // independent of which child finished first.
                let (c_no, s_no) = child(0);
                let (c_in, s_in) = child(1);
                if s_no <= s_in {
                    (c_no.clone(), *s_no)
                } else {
                    (c_in.clone(), *s_in)
                }
            }
            TaskKind::Combine { base } => {
                let mut merged = base.clone();
                for i in 0..task.children.len() {
                    merged.merge(&child(i).0);
                }
                let size = self.evaluator.size_of(&merged);
                (merged, size)
            }
        };
        if let (Some(session), Some(key)) = (self.session, &task.key) {
            session.record(key.clone(), result.clone());
        }
        task.result.set(result).expect("each task executes exactly once");
    }

    /// Completes `id`: publishes the result, then readies the parent if
    /// this was its last unsettled dependency. The result store above
    /// happens-before the `AcqRel` decrement, so a parent that observes
    /// zero pending sees every child's result.
    fn settle(&self, id: usize, lane: &Mutex<VecDeque<usize>>) {
        if let Some(parent) = self.tasks[id].parent {
            if self.tasks[parent].pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                lane.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push_back(parent);
            }
        }
        self.completed.fetch_add(1, Ordering::Release);
    }

    /// Claims a task: own lane LIFO first (depth-first, cache-warm), then
    /// FIFO steals from the other lanes' cold ends.
    fn claim(&self, own: usize) -> Option<usize> {
        if let Some(id) =
            self.lanes[own].lock().unwrap_or_else(std::sync::PoisonError::into_inner).pop_back()
        {
            return Some(id);
        }
        let n = self.lanes.len();
        for off in 1..n {
            let victim = (own + off) % n;
            let stolen = self.lanes[victim]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop_front();
            if let Some(id) = stolen {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(id);
            }
        }
        None
    }

    fn drive(&self, own: usize) {
        while self.completed.load(Ordering::Acquire) < self.tasks.len() {
            if self.aborted.load(Ordering::Acquire) {
                return;
            }
            match self.claim(own) {
                Some(id) => {
                    let ok = catch_unwind(AssertUnwindSafe(|| self.execute(id))).map_err(|p| {
                        self.panic
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .get_or_insert(p);
                        self.aborted.store(true, Ordering::Release);
                    });
                    if ok.is_err() {
                        return;
                    }
                    self.settle(id, &self.lanes[own]);
                }
                // Every unfinished DAG has a ready or in-flight task, so
                // this only waits out another lane's in-flight work.
                None => std::thread::park_timeout(Duration::from_micros(50)),
            }
        }
    }
}

/// Evaluates `tree` through the task-DAG executor on `pool`, returning an
/// optimal configuration and its size — byte-identical to
/// [`evaluate_inlining_tree`](crate::tree::evaluate_inlining_tree) on the
/// same inputs, at any worker count (including a zero-worker pool, where
/// the caller drives every lane itself).
///
/// `session`, when given, memoizes finished subproblems across calls
/// (hash-consing) and accumulates [`ExecutorStats`]. Memo keys carry
/// `evaluator.memo_scope()`, so one session is safe to share across
/// evaluators over different modules; an evaluator with no scope
/// (`None`) skips memoization and the session only counts its tasks.
pub fn evaluate_inlining_tree_dag(
    tree: &InliningTree,
    evaluator: &dyn Evaluator,
    base: InliningConfiguration,
    pool: &WorkerPool,
    session: Option<&SearchSession>,
) -> (InliningConfiguration, u64) {
    let mut tasks = Vec::new();
    let mut dedup_hits = 0u64;
    let scope = evaluator.memo_scope();
    let root = flatten(tree, base, None, &mut tasks, session, scope, &mut dedup_hits);
    if let Some(s) = session {
        s.tasks.fetch_add(tasks.len() as u64, Ordering::Relaxed);
        s.dedup_hits.fetch_add(dedup_hits, Ordering::Relaxed);
    }

    // One lane per driver: the pool's workers plus the calling thread.
    let drivers = pool.threads() + 1;
    let run = Run {
        tasks: &tasks,
        lanes: (0..drivers).map(|_| Mutex::new(VecDeque::new())).collect(),
        evaluator,
        completed: AtomicUsize::new(0),
        steals: AtomicU64::new(0),
        aborted: AtomicBool::new(false),
        panic: Mutex::new(None),
        session,
    };
    // Seed the ready tasks (leaves and constants) round-robin across lanes
    // so every driver starts with local work.
    let mut seeded = 0usize;
    for (id, task) in tasks.iter().enumerate() {
        if task.pending.load(Ordering::Relaxed) == 0 {
            run.lanes[seeded % drivers]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push_back(id);
            seeded += 1;
        }
    }

    let lane_ids: Vec<usize> = (0..drivers).collect();
    pool.map(&lane_ids, |&lane| run.drive(lane));

    if let Some(p) = run.panic.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take() {
        resume_unwind(p);
    }
    if let Some(s) = session {
        s.steals.fetch_add(run.steals.load(Ordering::Relaxed), Ordering::Relaxed);
    }
    tasks[root].result.get().cloned().expect("root task settled")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::CompilerEvaluator;
    use crate::tree::{build_inlining_tree, evaluate_inlining_tree, space_size};
    use optinline_callgraph::{InlineGraph, PartitionStrategy};
    use optinline_codegen::X86Like;
    use optinline_ir::{BinOp, FuncBuilder, Linkage, Module};

    /// A module realizing a call-graph shape with varied bodies.
    fn module_from_shape(n_funcs: usize, edges: &[(usize, usize)], seed: u64) -> Module {
        let mut m = Module::new(format!("dagshape{seed}"));
        let ids: Vec<_> = (0..n_funcs)
            .map(|i| {
                let linkage = if i == 0 { Linkage::Public } else { Linkage::Internal };
                m.declare_function(format!("f{i}"), 1, linkage)
            })
            .collect();
        let mut rng = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for (i, &fid) in ids.iter().enumerate() {
            let callees: Vec<_> =
                edges.iter().filter(|&&(a, _)| a == i).map(|&(_, b)| ids[b]).collect();
            let mut b = FuncBuilder::new(&mut m, fid);
            let p = b.param(0);
            let mut acc = p;
            for _ in 0..(next() % 5) as usize {
                let c = b.iconst((next() % 17) as i64);
                let op = [BinOp::Add, BinOp::Xor, BinOp::Mul][(next() % 3) as usize];
                acc = b.bin(op, acc, c);
            }
            for callee in callees {
                let arg = if next() % 2 == 0 { b.iconst((next() % 9) as i64) } else { acc };
                acc = b.call(callee, &[arg]).unwrap();
            }
            b.ret(Some(acc));
        }
        optinline_ir::assert_verified(&m);
        m
    }

    fn seq_and_dag(
        shape: (usize, &[(usize, usize)]),
        seed: u64,
        workers: usize,
        strategy: PartitionStrategy,
    ) -> ((InliningConfiguration, u64), (InliningConfiguration, u64)) {
        let m = module_from_shape(shape.0, shape.1, seed);
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let graph = InlineGraph::from_module(ev.module());
        let tree = build_inlining_tree(&graph, strategy);
        let seq = evaluate_inlining_tree(&tree, &ev, InliningConfiguration::clean_slate());
        let pool = WorkerPool::new(workers);
        let dag = evaluate_inlining_tree_dag(
            &tree,
            &ev,
            InliningConfiguration::clean_slate(),
            &pool,
            None,
        );
        (seq, dag)
    }

    #[test]
    fn dag_matches_sequential_on_chains_and_diamonds() {
        for (seed, shape) in [
            (1u64, (4usize, &[(0, 1), (1, 2), (2, 3)][..])),
            (2, (6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)][..])),
            (3, (4, &[(0, 1), (0, 2), (1, 3), (2, 3)][..])),
            (5, (5, &[(0, 1), (2, 3), (3, 4)][..])),
            (6, (4, &[(0, 1), (1, 2), (3, 1)][..])),
        ] {
            for workers in [0, 1, 3] {
                let (seq, dag) = seq_and_dag(shape, seed, workers, PartitionStrategy::Paper);
                assert_eq!(seq, dag, "seed {seed}, workers {workers}");
            }
        }
    }

    #[test]
    fn dag_preserves_the_prefer_not_inlined_tie_rule() {
        // An evaluator where everything ties: the optimum must come out as
        // the clean slate (all `not_inlined` branches), exactly as the
        // sequential walk breaks ties.
        struct Flat;
        impl Evaluator for Flat {
            fn size_of(&self, _c: &InliningConfiguration) -> u64 {
                100
            }
            fn compilations(&self) -> u64 {
                0
            }
            fn queries(&self) -> u64 {
                0
            }
        }
        let graph = InlineGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let tree = build_inlining_tree(&graph, PartitionStrategy::Paper);
        let seq = evaluate_inlining_tree(&tree, &Flat, InliningConfiguration::clean_slate());
        let pool = WorkerPool::new(3);
        let dag = evaluate_inlining_tree_dag(
            &tree,
            &Flat,
            InliningConfiguration::clean_slate(),
            &pool,
            None,
        );
        assert_eq!(seq, dag);
        assert_eq!(dag.0.inlined_count(), 0, "ties must prefer not_inlined");
    }

    #[test]
    fn session_dedups_repeated_evaluations() {
        let m = module_from_shape(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)], 7);
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let graph = InlineGraph::from_module(ev.module());
        let tree = build_inlining_tree(&graph, PartitionStrategy::Paper);
        let pool = WorkerPool::new(2);
        let session = SearchSession::new();
        let first = evaluate_inlining_tree_dag(
            &tree,
            &ev,
            InliningConfiguration::clean_slate(),
            &pool,
            Some(&session),
        );
        let cold = session.stats();
        assert_eq!(cold.dedup_hits, 0, "a cold tree has all-distinct subproblems");
        assert!(cold.tasks as u128 >= space_size(&tree));
        let second = evaluate_inlining_tree_dag(
            &tree,
            &ev,
            InliningConfiguration::clean_slate(),
            &pool,
            Some(&session),
        );
        assert_eq!(first, second);
        let warm = session.stats();
        assert_eq!(warm.dedup_hits, 1, "the whole repeated tree collapses to its root");
        assert_eq!(warm.tasks, cold.tasks + 1, "one constant task on the warm run");
    }

    #[test]
    fn session_shares_subproblems_across_different_bases() {
        // The same subtree under bases that differ only in no-inline
        // decisions on *foreign* sites has the same canonical identity
        // (inlined sites only) — and the warm result must still be
        // byte-identical to a fresh sequential walk under the new base.
        let graph = InlineGraph::from_edges(2, &[(0, 1)]);
        let tree = build_inlining_tree(&graph, PartitionStrategy::Paper);
        struct Count(AtomicU64);
        impl Evaluator for Count {
            fn size_of(&self, c: &InliningConfiguration) -> u64 {
                self.0.fetch_add(1, Ordering::Relaxed);
                50 + c.inlined_count() as u64
            }
            fn compilations(&self) -> u64 {
                0
            }
            fn queries(&self) -> u64 {
                self.0.load(Ordering::Relaxed)
            }
            fn memo_scope(&self) -> Option<u128> {
                Some(0xC0)
            }
        }
        let ev = Count(AtomicU64::new(0));
        let pool = WorkerPool::new(0);
        let session = SearchSession::new();
        let base_a = InliningConfiguration::clean_slate();
        // Same canonical base (no inlined sites), different explicit map.
        let base_b =
            InliningConfiguration::clean_slate().with(CallSiteId::new(9), Decision::NoInline);
        let a = evaluate_inlining_tree_dag(&tree, &ev, base_a, &pool, Some(&session));
        let queries_after_a = ev.queries();
        let b = evaluate_inlining_tree_dag(&tree, &ev, base_b.clone(), &pool, Some(&session));
        assert_eq!(a.1, b.1);
        assert_eq!(ev.queries(), queries_after_a, "warm run must not evaluate");
        assert_eq!(session.stats().dedup_hits, 1);
        // Byte-identity: the warm result equals a fresh sequential walk
        // under base_b, carrying base_b's explicit foreign entry.
        let fresh = Count(AtomicU64::new(0));
        let expected = evaluate_inlining_tree(&tree, &fresh, base_b);
        assert_eq!(b, expected, "warm result must replay onto the caller's base");
    }

    #[test]
    fn session_memo_is_scoped_per_evaluator_domain() {
        // Two modules with identical call-graph shape — and therefore
        // identical trees and densely minted site ids — but different
        // bodies. Sharing one session across both must not let either
        // module's memoized optimum answer the other's search.
        let edges = &[(0usize, 1usize), (1, 2), (2, 3)][..];
        let m1 = module_from_shape(4, edges, 21);
        let m2 = module_from_shape(4, edges, 22);
        let ev1 = CompilerEvaluator::new(m1, Box::new(X86Like));
        let ev2 = CompilerEvaluator::new(m2, Box::new(X86Like));
        assert_ne!(ev1.memo_scope(), ev2.memo_scope());
        let tree1 =
            build_inlining_tree(&InlineGraph::from_module(ev1.module()), PartitionStrategy::Paper);
        let tree2 =
            build_inlining_tree(&InlineGraph::from_module(ev2.module()), PartitionStrategy::Paper);
        assert_eq!(tree1, tree2, "shapes must collide for this to be a real test");
        let seq1 = evaluate_inlining_tree(&tree1, &ev1, InliningConfiguration::clean_slate());
        let seq2 = evaluate_inlining_tree(&tree2, &ev2, InliningConfiguration::clean_slate());
        let session = SearchSession::new();
        let pool = WorkerPool::new(2);
        let dag1 = evaluate_inlining_tree_dag(
            &tree1,
            &ev1,
            InliningConfiguration::clean_slate(),
            &pool,
            Some(&session),
        );
        let dag2 = evaluate_inlining_tree_dag(
            &tree2,
            &ev2,
            InliningConfiguration::clean_slate(),
            &pool,
            Some(&session),
        );
        assert_eq!(dag1, seq1);
        assert_eq!(dag2, seq2, "module 2 must not inherit module 1's memoized results");
        assert_eq!(session.stats().dedup_hits, 0, "distinct domains must never alias");
    }

    #[test]
    fn anonymous_evaluators_skip_session_memoization() {
        // An evaluator with no memo scope must not populate (or read) a
        // shared session's table — only the counters move.
        struct Flat2;
        impl Evaluator for Flat2 {
            fn size_of(&self, _c: &InliningConfiguration) -> u64 {
                7
            }
            fn compilations(&self) -> u64 {
                0
            }
            fn queries(&self) -> u64 {
                0
            }
        }
        let graph = InlineGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let tree = build_inlining_tree(&graph, PartitionStrategy::Paper);
        let pool = WorkerPool::new(0);
        let session = SearchSession::new();
        let a = evaluate_inlining_tree_dag(
            &tree,
            &Flat2,
            InliningConfiguration::clean_slate(),
            &pool,
            Some(&session),
        );
        let b = evaluate_inlining_tree_dag(
            &tree,
            &Flat2,
            InliningConfiguration::clean_slate(),
            &pool,
            Some(&session),
        );
        assert_eq!(a, b);
        assert_eq!(session.memo_len(), 0, "no scope, no memo entries");
        assert_eq!(session.stats().dedup_hits, 0);
        assert!(session.stats().tasks > 0, "counters still accumulate");
    }

    #[test]
    fn steals_are_observed_with_multiple_lanes() {
        // A components-heavy tree seeds many independent leaves; with
        // several lanes at least the counters must be consistent (steals
        // can be zero on a 1-CPU machine, but tasks must all run).
        let m = module_from_shape(6, &[(0, 1), (2, 3), (4, 5)], 11);
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let graph = InlineGraph::from_module(ev.module());
        let tree = build_inlining_tree(&graph, PartitionStrategy::Paper);
        let session = SearchSession::new();
        let pool = WorkerPool::new(3);
        let seq = evaluate_inlining_tree(&tree, &ev, InliningConfiguration::clean_slate());
        let dag = evaluate_inlining_tree_dag(
            &tree,
            &ev,
            InliningConfiguration::clean_slate(),
            &pool,
            Some(&session),
        );
        assert_eq!(seq, dag);
        let s = session.stats();
        assert!(s.tasks > 0);
        assert_eq!(s.dedup_hits, 0);
    }

    #[test]
    fn executor_survives_concurrent_worker_panics() {
        // Fire-and-forget panicking jobs kill pool workers mid-run; the
        // respawn guard must keep the DAG's queued lane work flowing and
        // the result identical to the sequential walk.
        let m = module_from_shape(5, &[(0, 1), (1, 2), (3, 4)], 13);
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let graph = InlineGraph::from_module(ev.module());
        let tree = build_inlining_tree(&graph, PartitionStrategy::Paper);
        let seq = evaluate_inlining_tree(&tree, &ev, InliningConfiguration::clean_slate());
        let pool = WorkerPool::new(2);
        for _ in 0..4 {
            pool.spawn(|| panic!("worker-killing job"));
        }
        let dag = evaluate_inlining_tree_dag(
            &tree,
            &ev,
            InliningConfiguration::clean_slate(),
            &pool,
            None,
        );
        assert_eq!(seq, dag);
    }

    #[test]
    fn evaluator_panics_propagate_without_deadlock() {
        struct Boom;
        impl Evaluator for Boom {
            fn size_of(&self, _c: &InliningConfiguration) -> u64 {
                panic!("evaluator exploded")
            }
            fn compilations(&self) -> u64 {
                0
            }
            fn queries(&self) -> u64 {
                0
            }
        }
        let graph = InlineGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let tree = build_inlining_tree(&graph, PartitionStrategy::Paper);
        let pool = WorkerPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            evaluate_inlining_tree_dag(
                &tree,
                &Boom,
                InliningConfiguration::clean_slate(),
                &pool,
                None,
            )
        }));
        assert!(r.is_err());
        // The pool remains serviceable.
        assert_eq!(pool.join(|| 1, || 2), (1, 2));
    }

    #[test]
    fn single_leaf_tree_evaluates_the_base() {
        let ev_graph = InlineGraph::from_edges(1, &[]);
        let tree = build_inlining_tree(&ev_graph, PartitionStrategy::Paper);
        assert_eq!(tree, InliningTree::Leaf);
        struct One;
        impl Evaluator for One {
            fn size_of(&self, _c: &InliningConfiguration) -> u64 {
                1
            }
            fn compilations(&self) -> u64 {
                0
            }
            fn queries(&self) -> u64 {
                0
            }
        }
        let pool = WorkerPool::new(0);
        let (cfg, size) = evaluate_inlining_tree_dag(
            &tree,
            &One,
            InliningConfiguration::clean_slate(),
            &pool,
            None,
        );
        assert_eq!((cfg, size), (InliningConfiguration::clean_slate(), 1));
    }
}
