//! Persistent cross-run evaluation cache, backed by the content-addressed
//! evaluation store.
//!
//! Optimal-inlining searches are embarrassingly re-runnable: the same
//! module is searched again after an autotuner restart, a flag tweak, or a
//! fresh process. Every one of those runs re-pays the full compile bill
//! unless results survive the process. [`PersistentCache`] keeps them on
//! disk through [`optinline_store`]: one *scope* per evaluation domain
//! (module text + target + pipeline options — the same `memo_scope`
//! fingerprint that keys in-process session memoization), living in a
//! sharded directory with a shared index, batched appends, compaction, and
//! size-budgeted GC. See the store crate (and DESIGN.md §5) for the layout
//! and crash-safety argument.
//!
//! What this module adds on top of the raw store:
//!
//! - **Canonical keying.** Entries are keyed by the configuration's
//!   inlined-site set restricted to the module's sites — matching the
//!   in-memory memo key of `CompilerEvaluator`, so a hit is exactly a
//!   compile avoided.
//! - **Identity derivation.** [`cache_meta`] builds the human-auditable
//!   identity tag recorded on (and verified against) every scope log, and
//!   [`module_fingerprint`] still computes the fingerprint older releases
//!   used for their flat per-module files — passed to the store as the
//!   *legacy* identity so those files are imported once (when their meta
//!   matches) or cleanly ignored (when it doesn't), never misread.
//! - **[`PersistentEvaluator`]**, the [`Evaluator`] adapter the CLI layers
//!   under `search`/`autotune` when `--cache-dir` is given: answer from
//!   the store, forward misses, record every fresh result.

use crate::config::InliningConfiguration;
use crate::evaluator::Evaluator;
use crate::measure::Objective;
use optinline_callgraph::Fnv128;
use optinline_ir::{CallSiteId, Measurement, Module};
use optinline_store::{LocalStore, Scope, ScopeSpec, StoreStats};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;

/// Counters for a [`PersistentCache`]'s lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Entries recovered from disk when the cache was opened (including
    /// any imported from a legacy per-module file).
    pub loaded: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the wrapped evaluator.
    pub misses: u64,
}

/// A stable fingerprint identifying (module, target): the identity older
/// releases named their flat per-module cache files with. Still computed
/// so the store can find and import (or ignore) those files.
pub fn module_fingerprint(module: &Module, target_name: &str) -> u128 {
    let mut h = Fnv128::new();
    h.write(module.to_string().as_bytes());
    h.write_u8(0);
    h.write(target_name.as_bytes());
    h.finish()
}

/// The identity tag recorded on a scope log and verified at every open.
/// Deliberately the same format the legacy per-module files carried, so
/// their metas verify during import.
pub fn cache_meta(module: &Module, target_name: &str) -> String {
    format!("{} target={} sites={}", module.name, target_name, module.inlinable_sites().len())
}

/// The on-disk size cache: one scope of the shared evaluation store.
#[derive(Debug)]
pub struct PersistentCache {
    store: Arc<LocalStore>,
    scope: Scope,
}

impl PersistentCache {
    /// Opens (or creates) the cache for `fingerprint` inside the store
    /// rooted at `dir`, loading every well-formed entry already on disk.
    /// `meta` names what the scope is for (module, target, site count) and
    /// is verified against the recorded identity: a mismatch — an FNV
    /// fingerprint collision, or a stale file — restarts the scope instead
    /// of serving another module's sizes. The same fingerprint doubles as
    /// the legacy identity, so an old flat `<fingerprint>.sizes` file in
    /// `dir` is imported when its meta matches.
    pub fn open(dir: &Path, fingerprint: u128, meta: &str) -> std::io::Result<Self> {
        Self::open_scoped(dir, fingerprint, Some(fingerprint), meta)
    }

    /// Opens the cache for an explicit (scope, legacy) identity pair:
    /// `fingerprint` is the content address (the evaluator's
    /// `memo_scope`), `legacy_fingerprint` the name an older release's
    /// flat file would carry (usually [`module_fingerprint`]), or `None`
    /// to skip import probing.
    pub fn open_scoped(
        dir: &Path,
        fingerprint: u128,
        legacy_fingerprint: Option<u128>,
        meta: &str,
    ) -> std::io::Result<Self> {
        let store = LocalStore::shared(dir)?;
        let scope = store.scope(ScopeSpec { fingerprint, meta, legacy_fingerprint })?;
        Ok(PersistentCache { store, scope })
    }

    /// Looks up the measurement recorded for a canonical inlined-site set.
    /// Legacy size-only entries surface as `cycles: None`.
    pub fn get(&self, key: &[CallSiteId]) -> Option<Measurement> {
        self.scope.get(key)
    }

    /// Records a result in the store's write-back buffer (made durable by
    /// a threshold flush, [`PersistentCache::flush`], or drop). I/O errors
    /// are swallowed — the cache is an accelerator, never a correctness
    /// dependency; the in-memory entry is kept either way.
    pub fn put(&self, key: Vec<CallSiteId>, value: Measurement) {
        self.scope.put(key, value);
    }

    /// Flushes buffered writes for this scope.
    pub fn flush(&self) -> std::io::Result<()> {
        self.scope.flush()
    }

    /// Number of entries currently resident (a bounded subset of the log).
    pub fn len(&self) -> usize {
        self.scope.len()
    }

    /// Whether the cache holds no resident entries.
    pub fn is_empty(&self) -> bool {
        self.scope.is_empty()
    }

    /// The backing scope log's path.
    pub fn path(&self) -> &Path {
        self.scope.path()
    }

    /// The store this cache lives in (shared per directory per process).
    pub fn store(&self) -> &Arc<LocalStore> {
        &self.store
    }

    /// Lifetime counters of this scope.
    pub fn stats(&self) -> PersistStats {
        let c = self.scope.counters();
        PersistStats { loaded: c.loaded, hits: c.hits, misses: c.misses }
    }

    /// Aggregate counters of the whole backing store.
    pub fn store_stats(&self) -> StoreStats {
        self.store.store_stats()
    }
}

/// An [`Evaluator`] adapter that answers queries from a
/// [`PersistentCache`] before delegating, and records every fresh result.
///
/// Keys are canonicalized to the module's own call sites, mirroring the
/// in-memory memoization of `CompilerEvaluator`: configurations that agree
/// on this module's sites share one entry.
#[derive(Debug)]
pub struct PersistentEvaluator<'e, E: Evaluator + std::fmt::Debug> {
    inner: &'e E,
    cache: &'e PersistentCache,
    sites: BTreeSet<CallSiteId>,
}

impl<'e, E: Evaluator + std::fmt::Debug> PersistentEvaluator<'e, E> {
    /// Wraps `inner`, canonicalizing keys to `sites`.
    pub fn new(inner: &'e E, cache: &'e PersistentCache, sites: BTreeSet<CallSiteId>) -> Self {
        PersistentEvaluator { inner, cache, sites }
    }

    fn key_of(&self, config: &InliningConfiguration) -> Vec<CallSiteId> {
        config.inlined_sites().intersection(&self.sites).copied().collect()
    }
}

impl<E: Evaluator + std::fmt::Debug> Evaluator for PersistentEvaluator<'_, E> {
    fn size_of(&self, config: &InliningConfiguration) -> u64 {
        let key = self.key_of(config);
        if let Some(found) = self.cache.get(&key) {
            return found.size;
        }
        let size = self.inner.size_of(config);
        self.cache.put(key, Measurement::size_only(size));
        size
    }

    fn measure(&self, config: &InliningConfiguration, objective: Objective) -> Measurement {
        if !objective.wants_cycles() {
            return Measurement::size_only(self.size_of(config));
        }
        let key = self.key_of(config);
        // A size-only entry does not answer a cycles query: fall through
        // and let the richer measurement upgrade it in the store.
        if let Some(found) = self.cache.get(&key) {
            if found.cycles.is_some() {
                return found;
            }
        }
        let measured = self.inner.measure(config, objective);
        self.cache.put(key, measured);
        measured
    }

    fn compilations(&self) -> u64 {
        self.inner.compilations()
    }

    fn queries(&self) -> u64 {
        self.inner.queries()
    }

    fn memo_scope(&self) -> Option<u128> {
        // The cache changes where answers come from, not what they are:
        // same evaluation domain as the wrapped evaluator.
        self.inner.memo_scope()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinline_store::{HEADER, LEGACY_HEADER};
    use std::fs::OpenOptions;
    use std::io::{Read, Seek, SeekFrom};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("optinline-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn k(ids: &[u32]) -> Vec<CallSiteId> {
        ids.iter().map(|&i| CallSiteId::new(i)).collect()
    }

    fn m(size: u64) -> Measurement {
        Measurement::size_only(size)
    }

    #[test]
    fn round_trips_across_reopen() {
        let dir = tmpdir("roundtrip");
        {
            let c = PersistentCache::open(&dir, 0xfeed, "mod-rt").unwrap();
            c.put(k(&[]), m(400));
            c.put(k(&[1, 5, 9]), m(321));
            c.put(k(&[2]), m(77));
            assert_eq!(c.stats().loaded, 0);
        }
        let c = PersistentCache::open(&dir, 0xfeed, "mod-rt").unwrap();
        assert_eq!(c.stats().loaded, 3);
        assert_eq!(c.get(&k(&[])), Some(m(400)));
        assert_eq!(c.get(&k(&[1, 5, 9])), Some(m(321)));
        assert_eq!(c.get(&k(&[2])), Some(m(77)));
        assert_eq!(c.get(&k(&[3])), None);
        assert_eq!(c.stats(), PersistStats { loaded: 3, hits: 3, misses: 1 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn distinct_fingerprints_use_distinct_files() {
        let dir = tmpdir("fingerprints");
        let a = PersistentCache::open(&dir, 1, "mod-a").unwrap();
        let b = PersistentCache::open(&dir, 2, "mod-b").unwrap();
        a.put(k(&[4]), m(10));
        assert_ne!(a.path(), b.path());
        assert_eq!(b.get(&k(&[4])), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_final_line_is_skipped() {
        let dir = tmpdir("truncated");
        let path;
        {
            let c = PersistentCache::open(&dir, 7, "mod-t").unwrap();
            c.put(k(&[1]), m(11));
            c.put(k(&[2]), m(22));
            path = c.path().to_path_buf();
        }
        // Chop the file mid-way through the last entry, as a crash would.
        let mut f = OpenOptions::new().read(true).write(true).open(&path).unwrap();
        let mut contents = String::new();
        f.read_to_string(&mut contents).unwrap();
        let cut = contents.len() - 4;
        f.set_len(cut as u64).unwrap();
        f.seek(SeekFrom::End(0)).unwrap();
        drop(f);
        let c = PersistentCache::open(&dir, 7, "mod-t").unwrap();
        assert_eq!(c.get(&k(&[1])), Some(m(11)));
        assert_eq!(c.get(&k(&[2])), None, "the damaged line must be dropped");
        // And the cache still accepts fresh writes for the lost key.
        c.put(k(&[2]), m(22));
        drop(c);
        let c = PersistentCache::open(&dir, 7, "mod-t").unwrap();
        assert_eq!(c.get(&k(&[2])), Some(m(22)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_v2_file_is_imported_with_line_level_tolerance() {
        // An old release's flat per-module file: well-formed lines are
        // imported; bad integer, unsorted sites, garbage bytes, and
        // malformed ids are each dropped independently.
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let legacy = dir.join(format!("{:032x}.sizes", 9u128));
        std::fs::write(
            &legacy,
            format!(
                "{LEGACY_HEADER}\nmeta mod-c\n77 s1,s2\nnot a number s3\n\
                 88 s9,s4\n\u{1F4A3}\n99 -\n55 sX\n"
            ),
        )
        .unwrap();
        let c = PersistentCache::open(&dir, 9, "mod-c").unwrap();
        assert_eq!(c.stats().loaded, 2);
        assert_eq!(c.get(&k(&[1, 2])), Some(m(77)));
        assert_eq!(c.get(&k(&[])), Some(m(99)));
        assert_eq!(c.get(&k(&[9, 4])), None);
        assert_eq!(c.get(&k(&[4, 9])), None);
        assert!(!legacy.exists(), "imported legacy file is retired");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_header_restarts_the_file() {
        let dir = tmpdir("version");
        // Seed a scope log carrying a future/unknown header.
        let probe = PersistentCache::open(&dir, 3, "mod-v").unwrap();
        let path = probe.path().to_path_buf();
        drop(probe);
        std::fs::write(&path, "optinline-cache v0\n12 s1\n").unwrap();
        let c = PersistentCache::open(&dir, 3, "mod-v").unwrap();
        assert_eq!(c.stats().loaded, 0, "old-format entries must not leak in");
        c.put(k(&[8]), m(123));
        drop(c);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.starts_with(HEADER), "file restarted at current version");
        let c = PersistentCache::open(&dir, 3, "mod-v").unwrap();
        assert_eq!(c.stats().loaded, 1);
        assert_eq!(c.get(&k(&[8])), Some(m(123)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn meta_mismatch_restarts_the_file() {
        // Same fingerprint (an FNV fingerprint collision, or a stale
        // file), different module identity: the recorded sizes must not be
        // served.
        let dir = tmpdir("meta");
        {
            let c = PersistentCache::open(&dir, 5, "modA target=x86 sites=3").unwrap();
            c.put(k(&[1]), m(111));
        }
        let c = PersistentCache::open(&dir, 5, "modB target=x86 sites=3").unwrap();
        assert_eq!(c.stats().loaded, 0, "a colliding module's entries must not leak in");
        assert_eq!(c.get(&k(&[1])), None);
        c.put(k(&[1]), m(222));
        drop(c);
        // The restart stamped the new identity; modB's entries round-trip.
        let c = PersistentCache::open(&dir, 5, "modB target=x86 sites=3").unwrap();
        assert_eq!(c.stats().loaded, 1);
        assert_eq!(c.get(&k(&[1])), Some(m(222)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multiline_meta_is_flattened_to_one_line() {
        let dir = tmpdir("metanl");
        {
            let c = PersistentCache::open(&dir, 6, "mod\nwith newline").unwrap();
            c.put(k(&[2]), m(20));
        }
        let c = PersistentCache::open(&dir, 6, "mod\nwith newline").unwrap();
        assert_eq!(c.stats().loaded, 1, "sanitized meta must round-trip");
        assert_eq!(c.get(&k(&[2])), Some(m(20)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn caches_in_one_process_share_one_store() {
        let dir = tmpdir("share");
        let a = PersistentCache::open(&dir, 0xaa, "mod-a").unwrap();
        let b = PersistentCache::open(&dir, 0xbb, "mod-b").unwrap();
        assert!(Arc::ptr_eq(a.store(), b.store()), "one directory, one store");
        a.put(k(&[1]), m(1));
        b.put(k(&[2]), m(2));
        let stats = a.store_stats();
        assert_eq!(stats.puts, 2, "store stats aggregate across scopes");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistent_evaluator_avoids_repeat_queries() {
        use optinline_callgraph::Decision;
        #[derive(Debug)]
        struct Count(AtomicU64);
        impl Evaluator for Count {
            fn size_of(&self, c: &InliningConfiguration) -> u64 {
                self.0.fetch_add(1, Ordering::Relaxed);
                1000 - 3 * c.inlined_count() as u64
            }
            fn compilations(&self) -> u64 {
                self.0.load(Ordering::Relaxed)
            }
            fn queries(&self) -> u64 {
                self.0.load(Ordering::Relaxed)
            }
        }
        let dir = tmpdir("wrapper");
        let sites: BTreeSet<CallSiteId> = k(&[1, 2]).into_iter().collect();
        let inner = Count(AtomicU64::new(0));
        {
            let cache = PersistentCache::open(&dir, 0xabc, "mod-w").unwrap();
            let ev = PersistentEvaluator::new(&inner, &cache, sites.clone());
            let c1 =
                InliningConfiguration::clean_slate().with(CallSiteId::new(1), Decision::Inline);
            assert_eq!(ev.size_of(&c1), 997);
            assert_eq!(ev.size_of(&c1), 997);
            // A foreign site doesn't change the canonical key.
            let c2 = c1.clone().with(CallSiteId::new(99), Decision::Inline);
            assert_eq!(ev.size_of(&c2), 997);
            assert_eq!(inner.queries(), 1, "one real evaluation for three queries");
        }
        // Fresh process, fresh inner evaluator: disk answers everything.
        let inner2 = Count(AtomicU64::new(0));
        let cache = PersistentCache::open(&dir, 0xabc, "mod-w").unwrap();
        let ev = PersistentEvaluator::new(&inner2, &cache, sites);
        let c1 = InliningConfiguration::clean_slate().with(CallSiteId::new(1), Decision::Inline);
        assert_eq!(ev.size_of(&c1), 997);
        assert_eq!(inner2.queries(), 0, "warm start must not touch the evaluator");
        assert_eq!(cache.stats().hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
