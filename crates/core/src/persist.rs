//! Persistent cross-run evaluation cache.
//!
//! Optimal-inlining searches are embarrassingly re-runnable: the same
//! module is searched again after an autotuner restart, a flag tweak, or a
//! fresh process. Every one of those runs re-pays the full compile bill
//! unless results survive the process. This module keeps them on disk as an
//! **append-only log**, one file per (module, target) fingerprint:
//!
//! ```text
//! optinline-cache v2            <- version header; mismatch = start over
//! meta <tag>                    <- caller-supplied identity; mismatch = start over
//! <size> -                      <- clean slate (no inlined sites)
//! <size> s3,s7,s12              <- canonical inlined-site set
//! ```
//!
//! Design points:
//!
//! - **Keyed canonically.** Entries are keyed by the configuration's
//!   canonical identity — its inlined-site set restricted to the module's
//!   sites — matching the in-memory memo key of `CompilerEvaluator`, so a
//!   hit is exactly a compile avoided.
//! - **Append-only, corruption-tolerant.** Writers only ever append one
//!   line per new result and flush; a crash can at worst truncate the final
//!   line. Readers skip anything malformed (truncated line, bad integer,
//!   stray bytes) and keep the rest, so a damaged cache degrades to a
//!   smaller cache, never an error.
//! - **Versioned and self-identifying.** The header names the format, and
//!   the `meta` line records what the caller believes the file is for
//!   (module name, target, site count). The filename's FNV-128 fingerprint
//!   is not cryptographic, so a (vanishingly unlikely) collision between
//!   two modules would otherwise serve wrong sizes silently; a meta
//!   mismatch instead restarts the file. Unknown headers restart too, so
//!   format changes never poison new binaries with stale bytes.
//! - **Restart by rename.** When a file must be restarted (unknown header
//!   or meta mismatch), the fresh header is written to a temp file and
//!   atomically renamed over the old one — a concurrent process holding an
//!   append handle keeps writing the unlinked inode, so its entries are
//!   lost but never interleaved mid-file. The cache is an accelerator for
//!   a single writer per file; concurrent writers are tolerated with
//!   at-worst-lost entries, never corruption that survives the reader's
//!   line-level tolerance.
//!
//! [`PersistentEvaluator`] wraps any [`Evaluator`] with such a cache and is
//! what the CLI layers under `search`/`autotune` when `--cache-dir` is
//! given.

use crate::config::InliningConfiguration;
use crate::evaluator::Evaluator;
use optinline_callgraph::Fnv128;
use optinline_ir::{CallSiteId, Module};
use std::collections::{BTreeSet, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Format tag written as the first line of every cache file.
const HEADER: &str = "optinline-cache v2";

/// Prefix of the identity line written right after the header.
const META_PREFIX: &str = "meta ";

/// Counters for a [`PersistentCache`]'s lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Entries recovered from disk when the cache was opened.
    pub loaded: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the wrapped evaluator.
    pub misses: u64,
}

/// A stable fingerprint identifying (module, target) for cache filenames:
/// any change to the module's printed form or the target name moves the
/// cache to a fresh file.
pub fn module_fingerprint(module: &Module, target_name: &str) -> u128 {
    let mut h = Fnv128::new();
    h.write(module.to_string().as_bytes());
    h.write_u8(0);
    h.write(target_name.as_bytes());
    h.finish()
}

/// Whether the file's final byte is a newline (empty files count as
/// terminated). Used to detect partial trailing lines after a crash.
fn ends_with_newline(path: &Path) -> bool {
    use std::io::{Read, Seek, SeekFrom};
    let Ok(mut f) = File::open(path) else { return true };
    let Ok(len) = f.metadata().map(|m| m.len()) else { return true };
    if len == 0 {
        return true;
    }
    if f.seek(SeekFrom::End(-1)).is_err() {
        return true;
    }
    let mut b = [0u8; 1];
    f.read_exact(&mut b).map(|_| b[0] == b'\n').unwrap_or(true)
}

/// The on-disk size cache: an in-memory map backed by an append-only log.
#[derive(Debug)]
pub struct PersistentCache {
    entries: Mutex<HashMap<Vec<CallSiteId>, u64>>,
    file: Mutex<File>,
    path: PathBuf,
    loaded: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PersistentCache {
    /// Opens (or creates) the cache for `fingerprint` inside `dir`,
    /// loading every well-formed entry already on disk. `meta` names what
    /// the file is for (module, target, site count) and is verified
    /// against the file's recorded identity: a mismatch — an FNV filename
    /// collision, or a stale file — restarts the cache instead of serving
    /// another module's sizes. A missing directory is created; a file
    /// with an unknown header is likewise restarted at the current
    /// version (via write-to-temp + atomic rename, so a concurrent
    /// appender can never interleave bytes mid-file).
    pub fn open(dir: &Path, fingerprint: u128, meta: &str) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{fingerprint:032x}.sizes"));
        // The identity must fit one line; newlines would desync the format.
        let meta: String =
            meta.chars().map(|c| if c == '\n' || c == '\r' { ' ' } else { c }).collect();
        let (entries, rewrite) = match File::open(&path) {
            Ok(f) => Self::load(f, &meta),
            Err(_) => (HashMap::new(), false),
        };
        if rewrite {
            // Unknown header or foreign meta: the bytes belong to a
            // different format or module. Restart via temp + rename so a
            // process still appending to the old file writes the unlinked
            // inode rather than splicing into the fresh one.
            let tmp = dir.join(format!("{fingerprint:032x}.sizes.tmp.{}", std::process::id()));
            let mut t = File::create(&tmp)?;
            writeln!(t, "{HEADER}")?;
            writeln!(t, "{META_PREFIX}{meta}")?;
            t.flush()?;
            drop(t);
            std::fs::rename(&tmp, &path)?;
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if file.metadata().map(|m| m.len() == 0).unwrap_or(true) {
            writeln!(file, "{HEADER}")?;
            writeln!(file, "{META_PREFIX}{meta}")?;
            file.flush()?;
        } else if !ends_with_newline(&path) {
            // A crash mid-append left a partial line; terminate it so the
            // next append can't splice onto the damaged bytes.
            writeln!(file)?;
            file.flush()?;
        }
        let loaded = entries.len() as u64;
        Ok(PersistentCache {
            entries: Mutex::new(entries),
            file: Mutex::new(file),
            path,
            loaded,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Parses a cache file, skipping malformed lines. Returns the entries
    /// and whether the file must be restarted (unknown header, or a meta
    /// line naming a different module).
    fn load(f: File, meta: &str) -> (HashMap<Vec<CallSiteId>, u64>, bool) {
        let mut lines = BufReader::new(f).lines();
        match lines.next() {
            Some(Ok(h)) if h == HEADER => {}
            None => return (HashMap::new(), false),
            _ => return (HashMap::new(), true),
        }
        match lines.next() {
            Some(Ok(m)) if m.strip_prefix(META_PREFIX) == Some(meta) => {}
            // Header-only file (crash between the two writes): empty, but
            // the identity is unrecorded — restart to stamp it.
            _ => return (HashMap::new(), true),
        }
        let mut entries = HashMap::new();
        for line in lines.map_while(Result::ok) {
            if let Some((key, size)) = Self::parse_entry(&line) {
                entries.insert(key, size);
            }
        }
        (entries, false)
    }

    fn parse_entry(line: &str) -> Option<(Vec<CallSiteId>, u64)> {
        let (size_str, sites_str) = line.trim_end().split_once(' ')?;
        let size: u64 = size_str.parse().ok()?;
        let mut sites = Vec::new();
        if sites_str != "-" {
            for part in sites_str.split(',') {
                let id: u32 = part.strip_prefix('s')?.parse().ok()?;
                sites.push(CallSiteId::new(id));
            }
            // Canonical entries are strictly sorted; anything else is a
            // damaged line.
            if !sites.windows(2).all(|w| w[0] < w[1]) {
                return None;
            }
        }
        Some((sites, size))
    }

    fn format_entry(key: &[CallSiteId], size: u64) -> String {
        if key.is_empty() {
            return format!("{size} -");
        }
        let sites: Vec<String> = key.iter().map(|s| s.to_string()).collect();
        format!("{} {}", size, sites.join(","))
    }

    /// Looks up the size recorded for a canonical inlined-site set.
    pub fn get(&self, key: &[CallSiteId]) -> Option<u64> {
        let found = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(key)
            .copied();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records a result, appending it to the log. I/O errors are swallowed
    /// (the cache is an accelerator, never a correctness dependency); the
    /// in-memory entry is kept either way.
    pub fn put(&self, key: Vec<CallSiteId>, size: u64) {
        let line = Self::format_entry(&key, size);
        let fresh = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, size)
            .is_none();
        if fresh {
            let mut f = self.file.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let _ = writeln!(f, "{line}");
            let _ = f.flush();
        }
    }

    /// Number of entries currently held (loaded + recorded).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            loaded: self.loaded,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// An [`Evaluator`] adapter that answers queries from a
/// [`PersistentCache`] before delegating, and records every fresh result.
///
/// Keys are canonicalized to the module's own call sites, mirroring the
/// in-memory memoization of `CompilerEvaluator`: configurations that agree
/// on this module's sites share one entry.
#[derive(Debug)]
pub struct PersistentEvaluator<'e, E: Evaluator + std::fmt::Debug> {
    inner: &'e E,
    cache: &'e PersistentCache,
    sites: BTreeSet<CallSiteId>,
}

impl<'e, E: Evaluator + std::fmt::Debug> PersistentEvaluator<'e, E> {
    /// Wraps `inner`, canonicalizing keys to `sites`.
    pub fn new(inner: &'e E, cache: &'e PersistentCache, sites: BTreeSet<CallSiteId>) -> Self {
        PersistentEvaluator { inner, cache, sites }
    }

    fn key_of(&self, config: &InliningConfiguration) -> Vec<CallSiteId> {
        config.inlined_sites().intersection(&self.sites).copied().collect()
    }
}

impl<E: Evaluator + std::fmt::Debug> Evaluator for PersistentEvaluator<'_, E> {
    fn size_of(&self, config: &InliningConfiguration) -> u64 {
        let key = self.key_of(config);
        if let Some(size) = self.cache.get(&key) {
            return size;
        }
        let size = self.inner.size_of(config);
        self.cache.put(key, size);
        size
    }

    fn compilations(&self) -> u64 {
        self.inner.compilations()
    }

    fn queries(&self) -> u64 {
        self.inner.queries()
    }

    fn memo_scope(&self) -> Option<u128> {
        // The cache changes where answers come from, not what they are:
        // same evaluation domain as the wrapped evaluator.
        self.inner.memo_scope()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Seek, SeekFrom};

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("optinline-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn k(ids: &[u32]) -> Vec<CallSiteId> {
        ids.iter().map(|&i| CallSiteId::new(i)).collect()
    }

    #[test]
    fn round_trips_across_reopen() {
        let dir = tmpdir("roundtrip");
        {
            let c = PersistentCache::open(&dir, 0xfeed, "mod-rt").unwrap();
            c.put(k(&[]), 400);
            c.put(k(&[1, 5, 9]), 321);
            c.put(k(&[2]), 77);
            assert_eq!(c.stats().loaded, 0);
        }
        let c = PersistentCache::open(&dir, 0xfeed, "mod-rt").unwrap();
        assert_eq!(c.stats().loaded, 3);
        assert_eq!(c.get(&k(&[])), Some(400));
        assert_eq!(c.get(&k(&[1, 5, 9])), Some(321));
        assert_eq!(c.get(&k(&[2])), Some(77));
        assert_eq!(c.get(&k(&[3])), None);
        assert_eq!(c.stats(), PersistStats { loaded: 3, hits: 3, misses: 1 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn distinct_fingerprints_use_distinct_files() {
        let dir = tmpdir("fingerprints");
        let a = PersistentCache::open(&dir, 1, "mod-a").unwrap();
        let b = PersistentCache::open(&dir, 2, "mod-b").unwrap();
        a.put(k(&[4]), 10);
        assert_ne!(a.path(), b.path());
        assert_eq!(b.get(&k(&[4])), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_final_line_is_skipped() {
        let dir = tmpdir("truncated");
        let path;
        {
            let c = PersistentCache::open(&dir, 7, "mod-t").unwrap();
            c.put(k(&[1]), 11);
            c.put(k(&[2]), 22);
            path = c.path().to_path_buf();
        }
        // Chop the file mid-way through the last entry, as a crash would.
        let mut f = OpenOptions::new().read(true).write(true).open(&path).unwrap();
        let mut contents = String::new();
        f.read_to_string(&mut contents).unwrap();
        let cut = contents.len() - 4;
        f.set_len(cut as u64).unwrap();
        f.seek(SeekFrom::End(0)).unwrap();
        drop(f);
        let c = PersistentCache::open(&dir, 7, "mod-t").unwrap();
        assert_eq!(c.get(&k(&[1])), Some(11));
        assert_eq!(c.get(&k(&[2])), None, "the damaged line must be dropped");
        // And the cache still accepts fresh writes for the lost key.
        c.put(k(&[2]), 22);
        drop(c);
        let c = PersistentCache::open(&dir, 7, "mod-t").unwrap();
        assert_eq!(c.get(&k(&[2])), Some(22));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_lines_are_skipped_individually() {
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{:032x}.sizes", 9u128));
        std::fs::write(
            &path,
            format!("{HEADER}\nmeta mod-c\n77 s1,s2\nnot a number s3\n88 s9,s4\n\u{1F4A3}\n99 -\n55 sX\n"),
        )
        .unwrap();
        let c = PersistentCache::open(&dir, 9, "mod-c").unwrap();
        // Well-formed lines survive; bad integer, unsorted sites, garbage
        // bytes, and malformed ids are each dropped independently.
        assert_eq!(c.stats().loaded, 2);
        assert_eq!(c.get(&k(&[1, 2])), Some(77));
        assert_eq!(c.get(&k(&[])), Some(99));
        assert_eq!(c.get(&k(&[9, 4])), None);
        assert_eq!(c.get(&k(&[4, 9])), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_header_restarts_the_file() {
        let dir = tmpdir("version");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{:032x}.sizes", 3u128));
        std::fs::write(&path, "optinline-cache v0\n12 s1\n").unwrap();
        let c = PersistentCache::open(&dir, 3, "mod-v").unwrap();
        assert_eq!(c.stats().loaded, 0, "old-format entries must not leak in");
        c.put(k(&[8]), 123);
        drop(c);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.starts_with(HEADER), "file restarted at current version");
        let c = PersistentCache::open(&dir, 3, "mod-v").unwrap();
        assert_eq!(c.stats().loaded, 1);
        assert_eq!(c.get(&k(&[8])), Some(123));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn meta_mismatch_restarts_the_file() {
        // Same fingerprint (an FNV filename collision, or a stale file),
        // different module identity: the recorded sizes must not be served.
        let dir = tmpdir("meta");
        {
            let c = PersistentCache::open(&dir, 5, "modA target=x86 sites=3").unwrap();
            c.put(k(&[1]), 111);
        }
        let c = PersistentCache::open(&dir, 5, "modB target=x86 sites=3").unwrap();
        assert_eq!(c.stats().loaded, 0, "a colliding module's entries must not leak in");
        assert_eq!(c.get(&k(&[1])), None);
        c.put(k(&[1]), 222);
        drop(c);
        // The restart stamped the new identity; modB's entries round-trip.
        let c = PersistentCache::open(&dir, 5, "modB target=x86 sites=3").unwrap();
        assert_eq!(c.stats().loaded, 1);
        assert_eq!(c.get(&k(&[1])), Some(222));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multiline_meta_is_flattened_to_one_line() {
        let dir = tmpdir("metanl");
        {
            let c = PersistentCache::open(&dir, 6, "mod\nwith newline").unwrap();
            c.put(k(&[2]), 20);
        }
        let c = PersistentCache::open(&dir, 6, "mod\nwith newline").unwrap();
        assert_eq!(c.stats().loaded, 1, "sanitized meta must round-trip");
        assert_eq!(c.get(&k(&[2])), Some(20));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistent_evaluator_avoids_repeat_queries() {
        use optinline_callgraph::Decision;
        #[derive(Debug)]
        struct Count(AtomicU64);
        impl Evaluator for Count {
            fn size_of(&self, c: &InliningConfiguration) -> u64 {
                self.0.fetch_add(1, Ordering::Relaxed);
                1000 - 3 * c.inlined_count() as u64
            }
            fn compilations(&self) -> u64 {
                self.0.load(Ordering::Relaxed)
            }
            fn queries(&self) -> u64 {
                self.0.load(Ordering::Relaxed)
            }
        }
        let dir = tmpdir("wrapper");
        let sites: BTreeSet<CallSiteId> = k(&[1, 2]).into_iter().collect();
        let inner = Count(AtomicU64::new(0));
        {
            let cache = PersistentCache::open(&dir, 0xabc, "mod-w").unwrap();
            let ev = PersistentEvaluator::new(&inner, &cache, sites.clone());
            let c1 =
                InliningConfiguration::clean_slate().with(CallSiteId::new(1), Decision::Inline);
            assert_eq!(ev.size_of(&c1), 997);
            assert_eq!(ev.size_of(&c1), 997);
            // A foreign site doesn't change the canonical key.
            let c2 = c1.clone().with(CallSiteId::new(99), Decision::Inline);
            assert_eq!(ev.size_of(&c2), 997);
            assert_eq!(inner.queries(), 1, "one real evaluation for three queries");
        }
        // Fresh process, fresh inner evaluator: disk answers everything.
        let inner2 = Count(AtomicU64::new(0));
        let cache = PersistentCache::open(&dir, 0xabc, "mod-w").unwrap();
        let ev = PersistentEvaluator::new(&inner2, &cache, sites);
        let c1 = InliningConfiguration::clean_slate().with(CallSiteId::new(1), Decision::Inline);
        assert_eq!(ev.size_of(&c1), 997);
        assert_eq!(inner2.queries(), 0, "warm start must not touch the evaluator");
        assert_eq!(cache.stats().hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
