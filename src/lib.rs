//! # optinline
//!
//! A from-scratch Rust reproduction of **"Understanding and Exploiting
//! Optimal Function Inlining"** (Theodoridis, Grosser, Su — ASPLOS 2022):
//! a recursively partitioned *exhaustive* search for the optimal inlining
//! configuration of a translation unit, and a simple, embarrassingly
//! parallel *autotuner* that gets most of the way there at a fraction of
//! the cost — both driving a self-contained `-Os`-style compiler substrate.
//!
//! This crate is a facade: it re-exports the workspace's crates under one
//! roof. See each member for the deep documentation:
//!
//! - [`ir`] — the SSA IR, builder, parser/printer, verifier, interpreter;
//! - [`opt`] — the `-Os`-like pass pipeline and decision-driven inliner;
//! - [`codegen`] — `.text` size models (x86-like and wasm-like);
//! - [`callgraph`] — inlining multigraphs, bridges, partition strategies;
//! - [`heuristics`] — the LLVM-`-Os`-like baseline inliner;
//! - [`core`] — inlining trees (Algorithms 1–2), the naïve search, the
//!   autotuner (Algorithm 3), and the paper's analyses;
//! - [`workloads`] — deterministic synthetic SPEC2017/SQLite/LLVM-shaped
//!   corpora plus the paper-figure sample modules.
//!
//! ```
//! use optinline::prelude::*;
//!
//! // Find the optimal inlining for one of the paper's figures.
//! let module = optinline::workloads::samples::fig5();
//! let ev = CompilerEvaluator::new(module, Box::new(X86Like));
//! let optimal = optinline::core::tree::optimal_configuration(&ev, PartitionStrategy::Paper);
//! assert!(optimal.evaluations <= 32); // recursively partitioned ≤ naive 2^5
//! ```

pub use optinline_callgraph as callgraph;
pub use optinline_codegen as codegen;
pub use optinline_core as core;
pub use optinline_heuristics as heuristics;
pub use optinline_ir as ir;
pub use optinline_opt as opt;
pub use optinline_workloads as workloads;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use optinline_callgraph::{Decision, InlineGraph, PartitionStrategy};
    pub use optinline_codegen::{text_size, Target, WasmLike, X86Like};
    pub use optinline_core::{
        autotune::Autotuner, CompilerEvaluator, Evaluator, EvaluatorStats, IncrementalEvaluator,
        InliningConfiguration, ModuleEvaluator, SizeEvaluator,
    };
    pub use optinline_heuristics::CostModelInliner;
    pub use optinline_ir::{BinOp, FuncBuilder, Linkage, Module};
    pub use optinline_opt::{optimize_os, ForcedDecisions, PipelineOptions};
    pub use optinline_workloads::{spec_suite, Scale};
}
