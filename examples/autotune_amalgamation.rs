//! The SQLite-amalgamation case study (§5.2.3): autotune a single large
//! module for size, starting both from a clean slate and from the baseline
//! heuristic's decisions, on the x86-like and wasm-like targets.
//!
//! Run with: `cargo run --release --example autotune_amalgamation`

use optinline::prelude::*;
use optinline::workloads::{amalgamation, Scale};

fn study(target_name: &str, target: Box<dyn Target>, module: Module) {
    let ev = CompilerEvaluator::new(module, target);
    let sites = ev.sites().clone();
    let clean_size = ev.size_of(&InliningConfiguration::clean_slate());
    let heuristic = InliningConfiguration::from_decisions(
        CostModelInliner::default().decide(ev.module(), ev.target()),
    );
    let heuristic_size = ev.size_of(&heuristic);

    let tuner = Autotuner::new(&ev, sites.clone());
    let clean_run = tuner.clean_slate(4);
    let init_run = tuner.run(heuristic.clone(), 4);
    let best = Autotuner::combine([&clean_run, &init_run]);

    let pct = |x: u64| 100.0 * x as f64 / heuristic_size as f64;
    println!("== {target_name} ==");
    println!("  inlinable calls:        {}", sites.len());
    println!("  -Os-like heuristic:     {heuristic_size} bytes (100.0%)");
    println!("  inlining disabled:      {clean_size} bytes ({:.1}%)", pct(clean_size));
    println!(
        "  autotuned (clean):      {} bytes ({:.1}%), {} rounds",
        clean_run.best().size,
        pct(clean_run.best().size),
        clean_run.rounds.len()
    );
    println!(
        "  autotuned (heur-init):  {} bytes ({:.1}%), {} rounds",
        init_run.best().size,
        pct(init_run.best().size),
        init_run.rounds.len()
    );
    println!("  combined best:          {} bytes ({:.1}%)", best.size, pct(best.size));
    println!("  total compilations:     {}\n", ev.compilations());
}

fn main() {
    let module = amalgamation(Scale::Small);
    println!(
        "amalgamation: {} functions, {} instructions\n",
        module.func_count(),
        module.inst_count()
    );
    study("x86-like target", Box::new(X86Like), module.clone());
    // On the wasm-like target calls are so cheap that inlining is marginal,
    // mirroring the paper's Emscripten finding.
    study("wasm-like target", Box::new(WasmLike), module);
}
