//! Quickstart: build a tiny module, exhaustively find its optimal inlining
//! configuration through the recursively partitioned search, and compare
//! the autotuner and the LLVM-like baseline against that optimum.
//!
//! Run with: `cargo run --example quickstart`

use optinline::prelude::*;

fn main() {
    // A little program: main reads its input from a global (so nothing
    // constant-folds to oblivion), calls `scale` twice and `clamp` once;
    // `scale` itself calls `clamp`. Four inlinable call sites.
    let mut m = Module::new("quickstart");
    let input = m.add_global("input", 40);
    let clamp = m.declare_function("clamp", 1, Linkage::Internal);
    let scale = m.declare_function("scale", 1, Linkage::Internal);
    let main_fn = m.declare_function("main", 0, Linkage::Public);
    {
        let mut b = FuncBuilder::new(&mut m, clamp);
        let p = b.param(0);
        let hi = b.iconst(255);
        let over = b.bin(BinOp::Gt, p, hi);
        let (sat, _) = b.new_block(0);
        let (ok, _) = b.new_block(0);
        b.branch(over, sat, &[], ok, &[]);
        b.switch_to(sat);
        b.ret(Some(hi));
        b.switch_to(ok);
        b.ret(Some(p));
    }
    {
        let mut b = FuncBuilder::new(&mut m, scale);
        let p = b.param(0);
        let three = b.iconst(3);
        let t = b.bin(BinOp::Mul, p, three);
        let v = b.call(clamp, &[t]).unwrap();
        b.ret(Some(v));
    }
    {
        let mut b = FuncBuilder::new(&mut m, main_fn);
        let x = b.load(input);
        let a = b.call(scale, &[x]).unwrap();
        let b2 = b.call(scale, &[a]).unwrap();
        let c = b.call(clamp, &[b2]).unwrap();
        b.ret(Some(c));
    }

    let ev = CompilerEvaluator::new(m, Box::new(X86Like));
    let n = ev.sites().len();
    println!("module has {n} inlinable call sites -> naive space 2^{n} = {}", 1u64 << n);

    // Exhaustive optimum via the inlining tree (Algorithms 1-2).
    let optimal = optinline::core::tree::optimal_configuration(&ev, PartitionStrategy::Paper);
    println!(
        "recursively partitioned space: {} evaluations (vs {} naive)",
        optimal.evaluations,
        1u64 << n
    );
    println!("optimal size: {} bytes with {}", optimal.size, optimal.config);

    // The LLVM-like baseline heuristic.
    let heuristic = CostModelInliner::default().decide(ev.module(), &X86Like);
    let heuristic_cfg = InliningConfiguration::from_decisions(heuristic);
    let heuristic_size = ev.size_of(&heuristic_cfg);
    println!("baseline -Os-like heuristic: {heuristic_size} bytes with {heuristic_cfg}");

    // The local autotuner (Algorithm 3): one clean-slate session and one
    // initialized with the baseline's decisions, combined per the paper.
    let tuner = Autotuner::new(&ev, ev.sites().clone());
    let clean = tuner.clean_slate(4);
    let init = tuner.run(heuristic_cfg.clone(), 4);
    let tuned = Autotuner::combine([&clean, &init]);
    println!(
        "autotuner: {} bytes (clean-slate best {}, heuristic-init best {}) with {}",
        tuned.size,
        clean.best().size,
        init.best().size,
        tuned.config
    );

    let no_inlining = ev.size_of(&InliningConfiguration::clean_slate());
    println!("\nsummary (bytes, lower is better):");
    println!("  inlining disabled : {no_inlining}");
    println!("  -Os-like baseline : {heuristic_size}");
    println!("  autotuned         : {}", tuned.size);
    println!("  optimal           : {}", optimal.size);
    assert!(tuned.size >= optimal.size);
    assert!(heuristic_size >= optimal.size);
}
