//! Search-space reduction demo (§3 of the paper): for the paper's own
//! call-graph figures and a handful of generated files, print the naïve
//! `2^n` space against the recursively partitioned one.
//!
//! Run with: `cargo run --example search_space`

use optinline::core::tree::{space_size, tree_stats, try_build_inlining_tree};
use optinline::prelude::*;
use optinline::workloads::{samples, GenParams};

fn report(label: &str, module: &Module) {
    let n = module.inlinable_sites().len();
    let graph = InlineGraph::from_module(module);
    // Budget-bounded: files whose recursive space would exceed 2^20 are
    // reported as unexplorable instead of hanging the demo.
    match try_build_inlining_tree(&graph, PartitionStrategy::Paper, 1 << 20) {
        Some(tree) => {
            let stats = tree_stats(&tree);
            println!(
                "{label:<24} sites={n:>3}  naive=2^{n:<2} ({:>10})  recursive={:>8}  components_nodes={:>4}",
                1u128 << n,
                space_size(&tree),
                stats.components_nodes,
            );
        }
        None => println!(
            "{label:<24} sites={n:>3}  naive=2^{n:<2} ({:>10})  recursive= > 2^20 (skipped)",
            1u128 << n
        ),
    }
}

fn main() {
    println!("-- paper figures --");
    report("listing1", &samples::listing1());
    report("fig2 (A,B,C,D)", &samples::fig2());
    report("fig4 (2 components)", &samples::fig4());
    report("fig5 (bridge chain)", &samples::fig5());
    report("dce_star(5)", &samples::dce_star(5));
    report("xalan_bitmap", &samples::xalan_bitmap());

    println!("\n-- generated files (growing call graphs) --");
    for (i, n_internal) in [6usize, 10, 14, 18].into_iter().enumerate() {
        let m = optinline::workloads::generate_file(&GenParams {
            n_internal,
            call_density: 1.4,
            clusters: 1 + i % 3,
            call_window: 2,
            ..GenParams::named(format!("gen{n_internal}"), 1000 + i as u64)
        });
        report(&format!("generated n={n_internal}"), &m);
    }

    println!("\nThe recursive space never loses the optimum — it only");
    println!("re-orders the enumeration so independent components multiply");
    println!("instead of exponentiating (paper §3.2).");
}
