//! Bring your own size model: implement [`Target`] for a hypothetical
//! embedded ISA and watch the optimal inlining configuration change with
//! the cost structure — the same program has *different* optimal inlining
//! on different targets, which is why the paper's method takes the size
//! metric as an input rather than baking one in.
//!
//! Run with: `cargo run --release --example custom_target`

use optinline::prelude::*;
use optinline_ir::{Inst, Terminator};

/// A Thumb-ish model: 2-byte ops, 4-byte calls, tiny function overhead —
/// call-heavy code is almost free, so inlining rarely pays.
#[derive(Debug)]
struct ThumbLike;

impl Target for ThumbLike {
    fn name(&self) -> &str {
        "thumb-like"
    }

    fn inst_bytes(&self, inst: &Inst) -> u64 {
        match inst {
            Inst::Const { value, .. } => {
                if (-128..128).contains(value) {
                    2
                } else {
                    6 // literal pool load
                }
            }
            Inst::Bin { .. } => 2,
            Inst::Call { args, .. } => 4 + args.len() as u64,
            Inst::Load { .. } | Inst::Store { .. } => 4,
        }
    }

    fn terminator_bytes(&self, term: &Terminator) -> u64 {
        match term {
            Terminator::Jump(t) => 2 + 2 * t.args.len() as u64,
            Terminator::Branch { then_to, else_to, .. } => {
                4 + 2 * (then_to.args.len() + else_to.args.len()) as u64
            }
            Terminator::Return(_) => 2,
            Terminator::Unreachable => 2,
        }
    }

    fn function_overhead(&self, _defs: u64) -> u64 {
        4
    }

    fn alignment(&self) -> u64 {
        4
    }
}

fn optimal_inline_count(module: &Module, target: Box<dyn Target>) -> (usize, u64, String) {
    let ev = CompilerEvaluator::new(module.clone(), target);
    let outcome = optinline::core::tree::optimal_configuration(&ev, PartitionStrategy::Paper);
    (outcome.config.inlined_count(), outcome.size, ev.target().name().to_string())
}

fn main() {
    let module = optinline::workloads::generate_file(&optinline::workloads::GenParams {
        n_internal: 7,
        call_density: 1.4,
        const_arg_prob: 0.4,
        ..optinline::workloads::GenParams::named("target_demo", 31)
    });
    let sites = module.inlinable_sites().len();
    println!("one module, {sites} inlinable call sites, three size models:\n");
    println!("{:<12} {:>16} {:>14}", "target", "optimal inlines", "optimal size");
    for target in [Box::new(X86Like) as Box<dyn Target>, Box::new(WasmLike), Box::new(ThumbLike)] {
        let (inlines, size, name) = optimal_inline_count(&module, target);
        println!("{name:<12} {inlines:>13}/{sites} {size:>13} B");
    }
    println!("\nThe optimum is a property of the size model, not the program:");
    println!("cheap 2-byte bodies with 4-byte calls (thumb-like) favour");
    println!("absorbing more callees than x86's 16-byte-aligned functions,");
    println!("while wasm-like locals pressure pulls the other way — the");
    println!("target-dependence behind the paper's SQLite/WASM contrast");
    println!("(§5.2.3), reproduced with a 30-line custom Target.");
}
