//! The textual IR workflow end to end: write a module as text, parse it,
//! autotune it, and print the optimized module — everything the
//! `optinline` CLI does, as library calls.
//!
//! Run with: `cargo run --example textual_ir`

use optinline::prelude::*;

const SOURCE: &str = r#"module "textual_demo" {
  global @counter = 10
  internal fn twice {
  b0(v0):
    v1 = add v0, v0
    ret v1
  }
  internal fn clamp99 {
  b0(v0):
    v1 = const 99
    v2 = gt v0, v1
    br v2, b1(), b2()
  b1():
    ret v1
  b2():
    ret v0
  }
  public fn main {
  b0():
    v0 = load @counter
    v1 = call twice(v0) site s0
    v2 = call twice(v1) site s1
    v3 = call clamp99(v2) site s2
    store @counter, v3
    ret v3
  }
}"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = optinline::ir::parse_module(SOURCE)?;
    optinline::ir::verify_module(&module)?;
    println!(
        "parsed `{}`: {} functions, {} inlinable sites\n",
        module.name,
        module.func_count(),
        module.inlinable_sites().len()
    );

    // Run it before...
    let before = optinline::ir::interp::run_main(&module)?;
    println!("interpreted: returns {:?}, counter = {}", before.ret, before.globals[0]);

    // ...find the optimal inlining...
    let ev = CompilerEvaluator::new(module, Box::new(X86Like));
    let optimal = optinline::core::tree::optimal_configuration(&ev, PartitionStrategy::Paper);
    println!(
        "\noptimal configuration ({} of {} sites inlined, {} B): {}",
        optimal.config.inlined_count(),
        ev.sites().len(),
        optimal.size,
        optimal.config
    );

    // ...compile under it and show the result.
    let optimized = ev.compile(&optimal.config);
    let after = optinline::ir::interp::run_main(&optimized)?;
    assert_eq!(before.observable(), after.observable());
    println!("\noptimized module (same observable behaviour, verified):\n");
    print!("{optimized}");
    Ok(())
}
