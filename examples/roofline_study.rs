//! A miniature §4 study: generate a corpus of files, compute each file's
//! optimal size exhaustively (recursively partitioned), and measure how far
//! the LLVM-like baseline heuristic and the autotuner are from optimal —
//! the roofline analysis of Figures 7/16 and the agreement of Table 2.
//!
//! Run with: `cargo run --release --example roofline_study`

use optinline::core::analysis::{Agreement, RooflineStats};
use optinline::core::tree;
use optinline::prelude::*;
use optinline::workloads::GenParams;

fn main() {
    let mut pairs_heuristic = Vec::new();
    let mut pairs_tuned = Vec::new();
    let mut agreement = Agreement::default();

    let files = 40;
    for seed in 0..files {
        let m = optinline::workloads::generate_file(&GenParams {
            n_internal: 4 + (seed as usize % 6),
            call_density: 1.4,
            ..GenParams::named(format!("file{seed:02}"), seed * 77 + 5)
        });
        let ev = CompilerEvaluator::new(m, Box::new(X86Like));
        let sites = ev.sites().clone();
        if sites.is_empty() || sites.len() > 14 {
            continue;
        }

        let optimal = tree::optimal_configuration(&ev, PartitionStrategy::Paper);

        let heuristic = InliningConfiguration::from_decisions(
            CostModelInliner::default().decide(ev.module(), &X86Like),
        );
        let h_size = ev.size_of(&heuristic);

        let tuner = Autotuner::new(&ev, sites.clone());
        let clean = tuner.clean_slate(4);
        let init = tuner.run(heuristic.clone(), 4);
        let tuned = Autotuner::combine([&clean, &init]);

        pairs_heuristic.push((h_size, optimal.size));
        pairs_tuned.push((tuned.size, optimal.size));
        agreement.accumulate(&sites, &optimal.config, &heuristic);
    }

    let heur = RooflineStats::from_pairs(&pairs_heuristic);
    let tuned = RooflineStats::from_pairs(&pairs_tuned);

    println!("files analyzed: {}", heur.files);
    println!("\n-- baseline -Os-like heuristic vs optimal (Figure 7) --");
    println!(
        "  optimal found:      {}/{} ({:.0}%)",
        heur.optimal_found,
        heur.files,
        heur.optimal_rate() * 100.0
    );
    println!(
        "  median overhead:    {:.2}% (non-optimal files)",
        heur.median_nonoptimal_overhead_pct
    );
    println!("  >=5% / >=10%:       {} / {}", heur.at_least_5pct, heur.at_least_10pct);
    println!("  max overhead:       {:.1}%", heur.max_overhead_pct);

    println!(
        "\n-- autotuner (best of clean-slate/heuristic-init, 4 rounds) vs optimal (Figure 16) --"
    );
    println!(
        "  optimal found:      {}/{} ({:.0}%)",
        tuned.optimal_found,
        tuned.files,
        tuned.optimal_rate() * 100.0
    );
    println!("  median overhead:    {:.2}%", tuned.median_nonoptimal_overhead_pct);
    println!("  max overhead:       {:.1}%", tuned.max_overhead_pct);

    println!("\n-- decision agreement, heuristic vs optimal (Table 2) --");
    println!("  both no-inline:     {}", agreement.both_no_inline);
    println!("  too aggressive:     {}", agreement.too_aggressive);
    println!("  too conservative:   {}", agreement.too_conservative);
    println!("  both inline:        {}", agreement.both_inline);
    println!("  agreement rate:     {:.1}%", agreement.agreement_rate() * 100.0);

    assert!(
        tuned.optimal_rate() >= heur.optimal_rate(),
        "the autotuner should dominate the heuristic"
    );
}
